package migrate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"scooter/internal/store"
)

// The migration journal records applied scripts in the database itself,
// the way production migration tools (ActiveRecord, Flyway, golang-migrate)
// do: re-running an applied script is a no-op, and running a *different*
// script under an already-used name is an error rather than a silent
// re-application.
//
// The journal lives in a reserved collection; the "$" prefix keeps it out
// of the model namespace (Scooter model names are identifiers).

// JournalCollection is the reserved collection holding applied-migration
// records.
const JournalCollection = "$migrations"

// JournalEntry describes one applied migration.
type JournalEntry struct {
	Name      string
	Hash      string // SHA-256 of the script source
	AppliedAt int64  // UNIX seconds
	Commands  int
}

// scriptHash fingerprints a migration source.
func scriptHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Journal reads and writes the applied-migration log of a database.
type Journal struct {
	db *store.DB
}

// NewJournal returns the journal of db.
func NewJournal(db *store.DB) *Journal { return &Journal{db: db} }

// Lookup returns the entry for a migration name, if present.
func (j *Journal) Lookup(name string) (*JournalEntry, bool) {
	docs := j.db.Collection(JournalCollection).Find(store.Eq("name", name))
	if len(docs) == 0 {
		return nil, false
	}
	d := docs[0]
	return &JournalEntry{
		Name:      asString(d["name"]),
		Hash:      asString(d["hash"]),
		AppliedAt: asInt64(d["appliedAt"]),
		Commands:  int(asInt64(d["commands"])),
	}, true
}

// Entries lists applied migrations in application order.
func (j *Journal) Entries() []JournalEntry {
	docs := j.db.Collection(JournalCollection).Find()
	out := make([]JournalEntry, 0, len(docs))
	for _, d := range docs {
		out = append(out, JournalEntry{
			Name:      asString(d["name"]),
			Hash:      asString(d["hash"]),
			AppliedAt: asInt64(d["appliedAt"]),
			Commands:  int(asInt64(d["commands"])),
		})
	}
	return out
}

// Status classifies a named script against the journal.
type Status int

// Journal verdicts for a named script.
const (
	// StatusNew means the name has never been applied.
	StatusNew Status = iota
	// StatusApplied means this exact script already ran; skip it.
	StatusApplied
	// StatusConflict means a different script ran under this name.
	StatusConflict
)

// Check classifies the (name, source) pair.
func (j *Journal) Check(name, src string) Status {
	entry, ok := j.Lookup(name)
	if !ok {
		return StatusNew
	}
	if entry.Hash == scriptHash(src) {
		return StatusApplied
	}
	return StatusConflict
}

// Record journals a successful application.
func (j *Journal) Record(name, src string, commands int) {
	j.db.Collection(JournalCollection).Insert(store.Doc{
		"name":      name,
		"hash":      scriptHash(src),
		"appliedAt": time.Now().Unix(),
		"commands":  int64(commands),
	})
}

// ErrJournalConflict reports a name reuse with different content.
type ErrJournalConflict struct {
	Name string
}

func (e *ErrJournalConflict) Error() string {
	return fmt.Sprintf("migration %q was already applied with different content; rename the new script instead of editing an applied one", e.Name)
}

func asString(v store.Value) string {
	s, _ := v.(string)
	return s
}

func asInt64(v store.Value) int64 {
	n, _ := v.(int64)
	return n
}
