package migrate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"scooter/internal/store"
)

// The migration journal records applied scripts in the database itself,
// the way production migration tools (ActiveRecord, Flyway, golang-migrate)
// do: re-running an applied script is a no-op, and running a *different*
// script under an already-used name is an error rather than a silent
// re-application.
//
// The journal lives in a reserved collection; the "$" prefix keeps it out
// of the model namespace (Scooter model names are identifiers).

// JournalCollection is the reserved collection holding applied-migration
// records.
const JournalCollection = "$migrations"

// JournalEntry describes one applied (or partially applied) migration.
type JournalEntry struct {
	Name      string
	Hash      string // SHA-256 of the script source
	AppliedAt int64  // UNIX seconds
	Commands  int    // total commands in the script
	Applied   int    // commands durably applied so far
	Done      bool   // the whole script completed
	// Watermark is the highest document id the currently executing
	// command's online backfill has durably swept (0 outside a backfill
	// and for stop-the-world runs). A crash mid-backfill resumes the sweep
	// at the first document above it instead of at the start of the
	// collection; command completion resets it.
	Watermark store.ID
}

// scriptHash fingerprints a migration source.
func scriptHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Journal reads and writes the applied-migration log of a database.
type Journal struct {
	db   *store.DB
	coll string
	// Clock supplies entry timestamps; nil means time.Now. Injected so
	// journal contents (and thus WAL bytes) are deterministic in tests.
	Clock func() time.Time
}

// NewJournal returns the journal of db, stored in JournalCollection.
func NewJournal(db *store.DB) *Journal { return NewJournalIn(db, JournalCollection) }

// NewJournalIn returns a journal stored in an arbitrary reserved
// collection. The shard coordinator keeps its cross-shard prepare/commit
// records in "$shardtx" on shard 0, reusing the same crash-safe
// Begin/Progress/Finish machinery that tracks per-shard migrations in
// "$migrations".
func NewJournalIn(db *store.DB, coll string) *Journal { return &Journal{db: db, coll: coll} }

func (j *Journal) now() int64 {
	if j.Clock != nil {
		return j.Clock().Unix()
	}
	return time.Now().Unix()
}

func entryFromDoc(d store.Doc) JournalEntry {
	return JournalEntry{
		Name:      asString(d["name"]),
		Hash:      asString(d["hash"]),
		AppliedAt: asInt64(d["appliedAt"]),
		Commands:  int(asInt64(d["commands"])),
		Applied:   int(asInt64(d["applied"])),
		Done:      asBool(d["done"]),
		Watermark: store.ID(asInt64(d["watermark"])),
	}
}

// Lookup returns the entry for a migration name, if present.
func (j *Journal) Lookup(name string) (*JournalEntry, bool) {
	e, _, ok := j.lookupDoc(name)
	return e, ok
}

func (j *Journal) lookupDoc(name string) (*JournalEntry, store.ID, bool) {
	docs := j.db.Collection(j.coll).Find(store.Eq("name", name))
	if len(docs) == 0 {
		return nil, store.Nil, false
	}
	e := entryFromDoc(docs[0])
	return &e, docs[0].ID(), true
}

// Entries lists applied migrations in application order.
func (j *Journal) Entries() []JournalEntry {
	docs := j.db.Collection(j.coll).Find()
	out := make([]JournalEntry, 0, len(docs))
	for _, d := range docs {
		out = append(out, entryFromDoc(d))
	}
	return out
}

// Status classifies a named script against the journal.
type Status int

// Journal verdicts for a named script.
const (
	// StatusNew means the name has never been applied.
	StatusNew Status = iota
	// StatusApplied means this exact script already ran to completion.
	StatusApplied
	// StatusConflict means a different script ran under this name.
	StatusConflict
	// StatusPartial means this exact script started but did not finish
	// (the process crashed mid-migration); Apply resumes it.
	StatusPartial
)

// Check classifies the (name, source) pair.
func (j *Journal) Check(name, src string) Status {
	entry, ok := j.Lookup(name)
	if !ok {
		return StatusNew
	}
	if entry.Hash != scriptHash(src) {
		return StatusConflict
	}
	if !entry.Done {
		return StatusPartial
	}
	return StatusApplied
}

// Begin opens a journal entry before the first command executes. If an
// unfinished entry for the same script already exists (a crashed run), the
// stored entry is revalidated against the re-parsed script — the hash must
// match and the stored command count and applied watermark must still make
// sense against `commands` — then its id is returned and progress
// continues from Applied. The revalidation guards the resume path against
// a hand-edited journal document (or, in principle, a hash collision):
// before it, a stale `commands` count mis-resumed silently at the wrong
// command. With a durable store attached, the entry is on disk before
// Begin returns.
func (j *Journal) Begin(name, src string, commands int) (store.ID, error) {
	if entry, id, ok := j.lookupDoc(name); ok {
		if entry.Hash != scriptHash(src) {
			return store.Nil, &ErrJournalConflict{Name: name}
		}
		if entry.Commands != commands {
			return store.Nil, &ErrJournalCorrupt{
				Name: name, Stored: entry.Commands, Parsed: commands,
				Detail: "stored command count does not match the re-parsed script",
			}
		}
		if entry.Applied < 0 || entry.Applied > commands {
			return store.Nil, &ErrJournalCorrupt{
				Name: name, Stored: entry.Applied, Parsed: commands,
				Detail: "applied command count is outside the script",
			}
		}
		return id, nil
	}
	id := j.db.Collection(j.coll).Insert(store.Doc{
		"name":      name,
		"hash":      scriptHash(src),
		"appliedAt": j.now(),
		"commands":  int64(commands),
		"applied":   int64(0),
		"done":      false,
	})
	return id, j.db.DurabilityErr()
}

// Progress records that the first `applied` commands have executed. The
// journal update is logged after the command's own mutations, so a
// recovered journal never claims more than the data reflects. Completing a
// command resets the backfill watermark: it belonged to the finished
// command's sweep.
func (j *Journal) Progress(id store.ID, applied int) error {
	return j.db.Collection(j.coll).Update(id, store.Doc{
		"applied":   int64(applied),
		"watermark": int64(0),
	})
}

// ProgressBackfill checkpoints an online backfill inside a command: every
// document with id <= watermark has been durably populated. Logged after
// the batch's own updates, so a recovered watermark never claims documents
// the data does not reflect.
func (j *Journal) ProgressBackfill(id store.ID, watermark store.ID) error {
	return j.db.Collection(j.coll).Update(id, store.Doc{
		"watermark": int64(watermark),
	})
}

// Finish marks the entry complete.
func (j *Journal) Finish(id store.ID, applied int) error {
	return j.db.Collection(j.coll).Update(id, store.Doc{
		"applied": int64(applied),
		"done":    true,
	})
}

// Record journals an already-completed application in one step; callers
// that need crash-safe progress use Begin/Progress/Finish instead.
func (j *Journal) Record(name, src string, commands int) {
	j.db.Collection(j.coll).Insert(store.Doc{
		"name":      name,
		"hash":      scriptHash(src),
		"appliedAt": j.now(),
		"commands":  int64(commands),
		"applied":   int64(commands),
		"done":      true,
	})
}

// ErrJournalConflict reports a name reuse with different content.
type ErrJournalConflict struct {
	Name string
}

func (e *ErrJournalConflict) Error() string {
	return fmt.Sprintf("migration %q was already applied with different content; rename the new script instead of editing an applied one", e.Name)
}

// ErrJournalCorrupt reports a crashed journal entry whose stored metadata
// contradicts the re-parsed script — resuming from it would silently apply
// the wrong commands.
type ErrJournalCorrupt struct {
	Name   string
	Stored int
	Parsed int
	Detail string
}

func (e *ErrJournalCorrupt) Error() string {
	return fmt.Sprintf("migration %q has a corrupt journal entry (%s: stored %d, script %d); refusing to resume",
		e.Name, e.Detail, e.Stored, e.Parsed)
}

func asString(v store.Value) string {
	s, _ := v.(string)
	return s
}

func asInt64(v store.Value) int64 {
	n, _ := v.(int64)
	return n
}

func asBool(v store.Value) bool {
	b, _ := v.(bool)
	return b
}
