package migrate

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scooter/internal/store"
	"scooter/internal/store/wal"
)

// seedMany seeds n chitter users so an online backfill spans several
// batches. Fields are deterministic functions of the index, so snapshots
// of independent runs are comparable byte for byte.
func seedMany(t *testing.T, db *store.DB, n int) {
	t.Helper()
	users := db.Collection("User")
	for i := 0; i < n; i++ {
		users.Insert(store.Doc{
			"name": fmt.Sprintf("u%03d", i), "email": fmt.Sprintf("u%03d@x", i),
			"pronouns": "they/them", "isAdmin": i == 0, "followers": []store.Value{},
		})
	}
}

// TestOnlineApplyMatchesStopTheWorld runs the same migration online
// (batched, watermarked) and stop-the-world over identical databases: the
// final states — documents, `$migrations` journal included — must be byte
// identical, and the online run must checkpoint monotonically increasing
// watermarks that reset at each command boundary.
func TestOnlineApplyMatchesStopTheWorld(t *testing.T) {
	s := loadSchema(t, chitterBase)

	ref := store.Open()
	seedMany(t, ref, 10)
	if _, applied, err := Apply(ref, s, "001_bio", applyScript, applyOpts()); err != nil || !applied {
		t.Fatalf("stop-the-world apply: applied=%v err=%v", applied, err)
	}
	want := snapBytes(t, ref)

	db := store.Open()
	seedMany(t, db, 10)
	opts := applyOpts()
	opts.Online = true
	opts.BatchSize = 3
	var begins, ends []string
	var watermarks []store.ID
	lastRemaining := -1
	opts.LazyBegin = func(model, field string, compute func(store.Doc) (store.Value, error)) error {
		begins = append(begins, model+"."+field)
		// compute derives the initialiser's value from an unmigrated doc.
		doc, _ := db.Collection("User").Get(store.ID(2))
		probe := store.Doc{}
		for k, v := range doc {
			if k != field {
				probe[k] = v
			}
		}
		v, err := compute(probe)
		if err != nil {
			return err
		}
		if field == "bio" && v != "I'm u000" {
			t.Errorf("lazy compute for bio = %v, want %q", v, "I'm u000")
		}
		return nil
	}
	opts.LazyEnd = func(model, field string) { ends = append(ends, model+"."+field) }
	opts.OnBatch = func(model, field string, watermark store.ID, remaining int) error {
		watermarks = append(watermarks, watermark)
		lastRemaining = remaining
		return nil
	}
	after, applied, err := Apply(db, s, "001_bio", applyScript, opts)
	if err != nil || !applied {
		t.Fatalf("online apply: applied=%v err=%v", applied, err)
	}
	if after.Model("User").Field("karma") == nil {
		t.Fatal("schema missing karma after online apply")
	}
	if got := snapBytes(t, db); !bytes.Equal(got, want) {
		t.Fatalf("online result differs from stop-the-world:\n%s\n---\n%s", got, want)
	}

	// Both AddFields opened and closed a window, in order.
	wantWindows := []string{"User.bio", "User.karma"}
	if fmt.Sprint(begins) != fmt.Sprint(wantWindows) || fmt.Sprint(ends) != fmt.Sprint(wantWindows) {
		t.Fatalf("windows: begins=%v ends=%v", begins, ends)
	}
	// 10 docs / batch 3 = 4 batches per command, watermarks increasing
	// within each command and resetting between commands.
	if len(watermarks) != 8 {
		t.Fatalf("batch checkpoints: %v", watermarks)
	}
	for i := 1; i < 4; i++ {
		if watermarks[i] <= watermarks[i-1] || watermarks[i+4] <= watermarks[i+3] {
			t.Fatalf("watermarks not increasing per command: %v", watermarks)
		}
	}
	if lastRemaining != 0 {
		t.Fatalf("remaining after final batch = %d", lastRemaining)
	}
	entry, ok := NewJournal(db).Lookup("001_bio")
	if !ok || !entry.Done || entry.Watermark != 0 {
		t.Fatalf("journal entry after online apply: %+v", entry)
	}
}

// TestOnlineApplyCrashMidBackfillConverges is the online sibling of
// TestApplyCrashMidScriptConverges: the log is torn at every byte the
// online apply phase wrote — which includes every batch boundary — and
// after recovery the journal's backfill watermark must never claim a
// document the data does not reflect, and a resumed online Apply must
// converge to the exact bytes of an uninterrupted run.
func TestOnlineApplyCrashMidBackfillConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow; run without -short")
	}
	s := loadSchema(t, chitterBase)
	opts := applyOpts()
	opts.Online = true
	opts.BatchSize = 3

	// Base: seeded users, durably logged, no migration yet.
	base := t.TempDir()
	l, db, err := wal.Open(base, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedMany(t, db, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := wal.SegmentName(1)
	baseLog, err := os.ReadFile(filepath.Join(base, seg))
	if err != nil {
		t.Fatal(err)
	}

	// Full: base + the whole online migration; its snapshot is the target.
	full := t.TempDir()
	if err := os.CopyFS(full, os.DirFS(base)); err != nil {
		t.Fatal(err)
	}
	l, db, err = wal.Open(full, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, applied, err := Apply(db, s, "001_bio", applyScript, opts); err != nil || !applied {
		t.Fatalf("full online apply: applied=%v err=%v", applied, err)
	}
	want := snapBytes(t, db)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fullLog, err := os.ReadFile(filepath.Join(full, seg))
	if err != nil {
		t.Fatal(err)
	}

	for off := len(baseLog); off <= len(fullLog); off++ {
		trial := t.TempDir()
		if err := os.CopyFS(trial, os.DirFS(full)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(trial, seg), fullLog[:off:off], 0o644); err != nil {
			t.Fatal(err)
		}
		l, db, err := wal.Open(trial, wal.Options{})
		if err != nil {
			t.Fatalf("off %d: recovery: %v", off, err)
		}
		// Invariant: the recovered watermark never claims unswept documents.
		// The command at index entry.Applied is the one mid-backfill; for
		// this script command 0 populates bio, command 1 karma.
		if entry, ok := NewJournal(db).Lookup("001_bio"); ok && entry.Watermark > 0 {
			field := "bio"
			if entry.Applied >= 1 {
				field = "karma"
			}
			for _, doc := range db.Collection("User").Find() {
				if doc.ID() <= entry.Watermark {
					if _, has := doc[field]; !has {
						t.Fatalf("off %d: watermark %d claims doc %d but %s is missing",
							off, entry.Watermark, doc.ID(), field)
					}
				}
			}
		}
		if _, _, err := Apply(db, s, "001_bio", applyScript, opts); err != nil {
			t.Fatalf("off %d: online re-apply: %v", off, err)
		}
		if got := snapBytes(t, db); !bytes.Equal(got, want) {
			t.Fatalf("off %d: state after crash+online re-apply differs from uninterrupted run", off)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("off %d: close: %v", off, err)
		}
	}
}

// TestJournalBeginRevalidates is the regression for resume trusting stale
// journal metadata: Begin on a crashed entry must revalidate the stored
// command count (and applied watermark) against the re-parsed script and
// refuse with a typed error when they contradict, instead of silently
// resuming at the wrong command.
func TestJournalBeginRevalidates(t *testing.T) {
	db := store.Open()
	j := NewJournal(db)
	j.Clock = fixedClock
	id, err := j.Begin("001_bio", applyScript, 2)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed entry with matching metadata resumes (same id back).
	got, err := j.Begin("001_bio", applyScript, 2)
	if err != nil || got != id {
		t.Fatalf("clean resume: id=%v err=%v", got, err)
	}

	// Stored command count contradicting the script: typed refusal.
	coll := db.Collection(JournalCollection)
	if err := coll.Update(id, store.Doc{"commands": int64(5)}); err != nil {
		t.Fatal(err)
	}
	_, err = j.Begin("001_bio", applyScript, 2)
	var corrupt *ErrJournalCorrupt
	if !errors.As(err, &corrupt) || corrupt.Stored != 5 || corrupt.Parsed != 2 {
		t.Fatalf("command-count mismatch: %v", err)
	}

	// Applied beyond the script length: also a typed refusal.
	if err := coll.Update(id, store.Doc{"commands": int64(2), "applied": int64(3)}); err != nil {
		t.Fatal(err)
	}
	_, err = j.Begin("001_bio", applyScript, 2)
	if !errors.As(err, &corrupt) {
		t.Fatalf("applied-out-of-range: %v", err)
	}

	// Apply surfaces the refusal instead of executing anything.
	s := loadSchema(t, chitterBase)
	seedChitter(t, db)
	if _, _, err := Apply(db, s, "001_bio", applyScript, applyOpts()); !errors.As(err, &corrupt) {
		t.Fatalf("Apply over corrupt journal: %v", err)
	}
}
