// Package structspec derives a Scooter specification from an annotated Go
// package tree — the bridge that onboards an existing Go codebase onto the
// verified-migration pipeline. It scans for exported structs with Go's own
// AST parser (no build step: the tree only has to parse, not compile),
// maps Go field types onto Scooter types, reads column names from
// `scooter`/`db` struct tags, and parses read/write policies from a
// `policy:"..."` tag with the ordinary policy grammar. Model-level
// annotations ride in doc-comment directives:
//
//	//scooter:principal                 — the model is a dynamic principal
//	//scooter:create <policy>           — create policy (default none)
//	//scooter:delete <policy>           — delete policy (default none)
//	//scooter:skip                      — not a model (embeddable helper)
//	//scooter:static-principal <Name>   — declare a static principal
//	                                      (any comment in the tree)
//
// The result is an ordinary *schema.Schema, type-checked before return, so
// everything downstream (specfmt, the differ, Sidecar) treats an imported
// code base exactly like a hand-written specification. Policies default to
// `none` — a field nobody annotated is a field nobody can touch, matching
// the paper's deny-by-default stance.
package structspec

import (
	"fmt"
	goast "go/ast"
	goparser "go/parser"
	gotoken "go/token"
	"io/fs"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"scooter/internal/ast"
	"scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/token"
	"scooter/internal/typer"
)

// Report collects what the importer did and what it had to skip, so the
// CLI can surface a faithful account instead of silently narrowing.
type Report struct {
	// Files is the number of Go files scanned.
	Files int
	// Models and Fields count what was imported.
	Models, Fields int
	// Statics counts declared static principals.
	Statics int
	// Warnings lists skipped fields, unmappable types, and other
	// non-fatal narrowings, one human-readable line each.
	Warnings []string
}

func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// structDecl is one struct type collected from the tree before mapping.
type structDecl struct {
	name      string
	st        *goast.StructType
	doc       *goast.CommentGroup
	skip      bool // //scooter:skip — embeddable helper, not a model
	principal bool
	create    string // policy source from //scooter:create, "" = none
	delete    string
	file      string
}

// Import scans dir recursively and derives the specification. The
// returned schema is type-checked and its models are sorted by name, so
// two imports of the same tree are byte-identical through specfmt.
func Import(dir string) (*schema.Schema, *Report, error) {
	rep := &Report{}
	decls, statics, err := scan(dir, rep)
	if err != nil {
		return nil, nil, err
	}
	if len(decls) == 0 {
		return nil, nil, fmt.Errorf("structspec: no exported structs found under %s", dir)
	}

	im := &importer{decls: map[string]*structDecl{}, rep: rep}
	for _, d := range decls {
		if prev, ok := im.decls[d.name]; ok {
			return nil, nil, fmt.Errorf("structspec: struct %s declared in both %s and %s", d.name, prev.file, d.file)
		}
		im.decls[d.name] = d
	}

	s := schema.New()
	sort.Strings(statics)
	for _, name := range statics {
		if err := s.AddStatic(name); err != nil {
			return nil, nil, fmt.Errorf("structspec: %w", err)
		}
	}
	rep.Statics = len(statics)

	var modelNames []string
	for _, d := range decls {
		if d.skip || !goast.IsExported(d.name) {
			continue
		}
		modelNames = append(modelNames, d.name)
	}
	sort.Strings(modelNames)
	for _, name := range modelNames {
		m, err := im.model(im.decls[name])
		if err != nil {
			return nil, nil, err
		}
		if err := s.AddModel(m); err != nil {
			return nil, nil, fmt.Errorf("structspec: %w", err)
		}
		rep.Models++
		rep.Fields += len(m.Fields)
	}

	if err := typer.New(s).CheckSchema(); err != nil {
		return nil, nil, fmt.Errorf("structspec: imported spec does not type-check: %w", err)
	}
	return s, rep, nil
}

// scan parses every non-test .go file under dir and collects struct
// declarations and static-principal directives.
func scan(dir string, rep *Report) ([]*structDecl, []string, error) {
	fset := gotoken.NewFileSet()
	var decls []*structDecl
	staticSet := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := goparser.ParseFile(fset, path, nil, goparser.ParseComments)
		if err != nil {
			return fmt.Errorf("structspec: %w", err)
		}
		rep.Files++
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if arg, ok := directiveArg(c.Text, "static-principal"); ok && arg != "" {
					staticSet[arg] = true
				}
			}
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*goast.GenDecl)
			if !ok || gd.Tok != gotoken.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*goast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*goast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				sd := &structDecl{name: ts.Name.Name, st: st, doc: doc, file: path}
				applyDirectives(sd, doc)
				decls = append(decls, sd)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var statics []string
	for name := range staticSet {
		statics = append(statics, name)
	}
	return decls, statics, nil
}

// directiveArg matches a `//scooter:<name> <arg>` comment line.
func directiveArg(comment, name string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(text, "scooter:"+name) {
		return "", false
	}
	rest := text[len("scooter:"+name):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. scooter:skipper
	}
	return strings.TrimSpace(rest), true
}

func applyDirectives(sd *structDecl, doc *goast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		if _, ok := directiveArg(c.Text, "skip"); ok {
			sd.skip = true
		}
		if _, ok := directiveArg(c.Text, "principal"); ok {
			sd.principal = true
		}
		if p, ok := directiveArg(c.Text, "create"); ok {
			sd.create = p
		}
		if p, ok := directiveArg(c.Text, "delete"); ok {
			sd.delete = p
		}
	}
}

type importer struct {
	decls map[string]*structDecl
	rep   *Report
}

// model maps one collected struct declaration to a schema model.
func (im *importer) model(sd *structDecl) (*schema.Model, error) {
	m := &schema.Model{Name: sd.name, Principal: sd.principal}
	var err error
	if m.Create, err = parseDirectivePolicy(sd.create); err != nil {
		return nil, fmt.Errorf("structspec: %s: create policy: %w", sd.name, err)
	}
	if m.Delete, err = parseDirectivePolicy(sd.delete); err != nil {
		return nil, fmt.Errorf("structspec: %s: delete policy: %w", sd.name, err)
	}
	if err := im.fields(m, sd, map[string]bool{sd.name: true}); err != nil {
		return nil, err
	}
	return m, nil
}

// fields appends the struct's fields to m, inlining embedded structs.
// seen guards against embedding cycles.
func (im *importer) fields(m *schema.Model, sd *structDecl, seen map[string]bool) error {
	for _, f := range sd.st.Fields.List {
		if len(f.Names) == 0 {
			if err := im.embed(m, sd, f.Type, seen); err != nil {
				return err
			}
			continue
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				continue // unexported fields are implementation detail
			}
			if err := im.field(m, sd, name.Name, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// embed inlines the fields of an embedded struct declared in the tree.
func (im *importer) embed(m *schema.Model, sd *structDecl, expr goast.Expr, seen map[string]bool) error {
	if star, ok := expr.(*goast.StarExpr); ok {
		expr = star.X
	}
	id, ok := expr.(*goast.Ident)
	if !ok {
		im.rep.warnf("%s: embedded %s skipped (not declared in the scanned tree)", m.Name, exprString(expr))
		return nil
	}
	inner, ok := im.decls[id.Name]
	if !ok {
		im.rep.warnf("%s: embedded %s skipped (not declared in the scanned tree)", m.Name, id.Name)
		return nil
	}
	if seen[id.Name] {
		return fmt.Errorf("structspec: embedding cycle through %s in %s", id.Name, m.Name)
	}
	seen[id.Name] = true
	err := im.fields(m, inner, seen)
	delete(seen, id.Name)
	return err
}

// field maps one named struct field to a schema field.
func (im *importer) field(m *schema.Model, sd *structDecl, goName string, f *goast.Field) error {
	tag := fieldTag(f)
	col := tag.Get("scooter")
	if col == "" {
		col = tag.Get("db")
	}
	if col == "-" {
		return nil // explicitly excluded from the schema
	}
	if i := strings.IndexByte(col, ','); i >= 0 {
		col = col[:i]
	}
	if col == "" {
		col = snake(goName)
	}
	if col == schema.IDFieldName {
		// Every Scooter model has an implicit unique id; a Go ID field
		// maps onto it rather than declaring a second one.
		return nil
	}
	typ, ok := im.mapType(f.Type)
	if !ok {
		im.rep.warnf("%s.%s: Go type %s has no Scooter mapping; field skipped", m.Name, col, exprString(f.Type))
		return nil
	}
	read, write, err := parsePolicyTag(tag.Get("policy"))
	if err != nil {
		return fmt.Errorf("structspec: %s.%s: %w", m.Name, col, err)
	}
	if m.Field(col) != nil {
		return fmt.Errorf("structspec: %s: duplicate field %s (tag collision?)", m.Name, col)
	}
	m.Fields = append(m.Fields, &schema.Field{Name: col, Type: typ, Read: read, Write: write})
	return nil
}

// mapType converts a Go field type to a Scooter type per the mapping
// table: scalars to scalars, *T to Option, []T to Set, []byte to Blob,
// time.Time to DateTime, and a struct declared in the tree to Id(Model).
func (im *importer) mapType(expr goast.Expr) (ast.Type, bool) {
	switch t := expr.(type) {
	case *goast.Ident:
		switch t.Name {
		case "string":
			return ast.StringType, true
		case "bool":
			return ast.BoolType, true
		case "int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64", "rune":
			return ast.I64Type, true
		case "float32", "float64":
			return ast.F64Type, true
		}
		if d, ok := im.decls[t.Name]; ok && !d.skip && goast.IsExported(d.name) {
			return ast.IdType(t.Name), true
		}
		return ast.Type{}, false
	case *goast.SelectorExpr:
		if pkg, ok := t.X.(*goast.Ident); ok && pkg.Name == "time" && t.Sel.Name == "Time" {
			return ast.DateTimeType, true
		}
		return ast.Type{}, false
	case *goast.StarExpr:
		inner, ok := im.mapType(t.X)
		if !ok {
			return ast.Type{}, false
		}
		return ast.OptionType(inner), true
	case *goast.ArrayType:
		if t.Len != nil {
			return ast.Type{}, false
		}
		if id, ok := t.Elt.(*goast.Ident); ok && (id.Name == "byte" || id.Name == "uint8") {
			return ast.BlobType, true
		}
		inner, ok := im.mapType(t.Elt)
		if !ok {
			return ast.Type{}, false
		}
		return ast.SetType(inner), true
	}
	return ast.Type{}, false
}

// parsePolicyTag parses `read: <policy>; write: <policy>` (either clause
// optional, either order) with the ordinary policy grammar. Both default
// to none: unannotated data is inaccessible, never silently public.
func parsePolicyTag(tag string) (read, write ast.Policy, err error) {
	read = ast.NonePolicy(token.Pos{})
	write = ast.NonePolicy(token.Pos{})
	if strings.TrimSpace(tag) == "" {
		return read, write, nil
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(tag, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		var op string
		switch {
		case strings.HasPrefix(clause, "read:"):
			op = "read"
		case strings.HasPrefix(clause, "write:"):
			op = "write"
		default:
			return read, write, fmt.Errorf("policy tag clause %q must start with read: or write:", clause)
		}
		if seen[op] {
			return read, write, fmt.Errorf("duplicate %s clause in policy tag", op)
		}
		seen[op] = true
		p, perr := parser.ParsePolicy(strings.TrimSpace(clause[len(op)+1:]))
		if perr != nil {
			return read, write, fmt.Errorf("%s policy: %w", op, perr)
		}
		if op == "read" {
			read = p
		} else {
			write = p
		}
	}
	return read, write, nil
}

// parseDirectivePolicy parses a //scooter:create or //scooter:delete
// policy; empty means none.
func parseDirectivePolicy(src string) (ast.Policy, error) {
	if src == "" {
		return ast.NonePolicy(token.Pos{}), nil
	}
	return parser.ParsePolicy(src)
}

// fieldTag returns the struct tag of f, parsed per reflect conventions.
func fieldTag(f *goast.Field) reflect.StructTag {
	if f.Tag == nil {
		return ""
	}
	return reflect.StructTag(strings.Trim(f.Tag.Value, "`"))
}

// snake converts a Go field name to snake_case: CreatedAt -> created_at,
// BuyerID -> buyer_id, HTTPPort -> http_port.
func snake(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		lower := r | 0x20
		isUpper := r >= 'A' && r <= 'Z'
		if isUpper && i > 0 {
			prevUpper := runes[i-1] >= 'A' && runes[i-1] <= 'Z'
			nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
			if !prevUpper || nextLower {
				b.WriteByte('_')
			}
		}
		if isUpper {
			b.WriteRune(lower)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// exprString renders a Go type expression for diagnostics.
func exprString(e goast.Expr) string {
	switch t := e.(type) {
	case *goast.Ident:
		return t.Name
	case *goast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *goast.StarExpr:
		return "*" + exprString(t.X)
	case *goast.ArrayType:
		return "[]" + exprString(t.Elt)
	case *goast.MapType:
		return "map[" + exprString(t.Key) + "]" + exprString(t.Value)
	}
	return fmt.Sprintf("%T", e)
}
