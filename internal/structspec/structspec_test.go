package structspec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/specfmt"
	"scooter/internal/typer"
)

const modelsDir = "../../testdata/models"

func importModels(t *testing.T) (*schema.Schema, *Report) {
	t.Helper()
	s, rep, err := Import(modelsDir)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return s, rep
}

func TestImportModelsTree(t *testing.T) {
	s, rep := importModels(t)

	var names []string
	for _, m := range s.Models {
		names = append(names, m.Name)
	}
	if got, want := strings.Join(names, ","), "AuditLog,Order,User"; got != want {
		t.Fatalf("models = %s, want %s", got, want)
	}
	if got, want := strings.Join(s.Statics, ","), "AuditService,Unauthenticated"; got != want {
		t.Fatalf("statics = %s, want %s", got, want)
	}

	user := s.Model("User")
	if !user.Principal {
		t.Fatalf("User must be a principal")
	}
	if user.Create.String() != "public" {
		t.Fatalf("User create = %s", user.Create)
	}
	if user.Delete.String() == "none" {
		t.Fatalf("User delete directive not applied")
	}
	// Tag priority: scooter tag wins, db tag next, snake_case fallback.
	for _, want := range []string{"name", "email", "password_hash", "admin", "created_at", "updated_at"} {
		if user.Field(want) == nil {
			t.Fatalf("User missing field %s; have %v", want, fieldNames(user))
		}
	}
	if user.Field("id") != nil {
		t.Fatalf("Go ID field must map onto the implicit id, not declare a field")
	}
	if got := user.Field("password_hash").Read.String(); got != "none" {
		t.Fatalf("password_hash read = %s, want none", got)
	}
	if got := user.Field("updated_at").Type.String(); got != "Option(DateTime)" {
		t.Fatalf("updated_at type = %s", got)
	}

	order := s.Model("Order")
	for field, typ := range map[string]string{
		"buyer":      "Id(User)",
		"total":      "F64",
		"note":       "Option(String)",
		"watchers":   "Set(Id(User))",
		"placed_at":  "DateTime",
		"created_at": "DateTime", // embedded Timestamps inlined
	} {
		f := order.Field(field)
		if f == nil {
			t.Fatalf("Order missing field %s; have %v", field, fieldNames(order))
		}
		if f.Type.String() != typ {
			t.Fatalf("Order.%s type = %s, want %s", field, f.Type, typ)
		}
	}
	if order.Field("meta") != nil {
		t.Fatalf("map field must be skipped, not imported")
	}
	if order.Field("refcount") != nil {
		t.Fatalf("unexported field must be skipped")
	}

	audit := s.Model("AuditLog")
	if got := audit.Field("payload").Type.String(); got != "Blob" {
		t.Fatalf("AuditLog.payload type = %s, want Blob", got)
	}
	if got := audit.Field("actor").Type.String(); got != "Option(Id(User))" {
		t.Fatalf("AuditLog.actor type = %s", got)
	}

	if s.Model("Timestamps") != nil {
		t.Fatalf("//scooter:skip struct imported as a model")
	}

	var metaWarn bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "meta") && strings.Contains(w, "map[string]string") {
			metaWarn = true
		}
	}
	if !metaWarn {
		t.Fatalf("unmappable map field not reported; warnings: %v", rep.Warnings)
	}
	if rep.Files != 4 || rep.Models != 3 || rep.Statics != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func fieldNames(m *schema.Model) []string {
	var out []string
	for _, f := range m.Fields {
		out = append(out, f.Name)
	}
	return out
}

// TestImportByteStable: formatting the imported spec, re-parsing it, and
// formatting again must be byte-identical — the fmt-idempotence contract
// machine-generated specs are held to.
func TestImportByteStable(t *testing.T) {
	s, _ := importModels(t)
	text := specfmt.Format(s)

	f, err := parser.ParsePolicyFile(text)
	if err != nil {
		t.Fatalf("formatted import does not re-parse: %v\n%s", err, text)
	}
	s2 := schema.FromPolicyFile(f)
	if err := typer.New(s2).CheckSchema(); err != nil {
		t.Fatalf("formatted import does not re-typecheck: %v", err)
	}
	if text2 := specfmt.Format(s2); text2 != text {
		t.Fatalf("specfmt not idempotent on struct2schema output\n--- first ---\n%s--- second ---\n%s", text, text2)
	}

	// Two independent imports are byte-identical.
	s3, _, err := Import(modelsDir)
	if err != nil {
		t.Fatalf("second Import: %v", err)
	}
	if specfmt.Format(s3) != text {
		t.Fatalf("import is not deterministic")
	}
}

func TestImportErrors(t *testing.T) {
	t.Run("empty tree", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, dir, "a.go", "package empty\n")
		if _, _, err := Import(dir); err == nil || !strings.Contains(err.Error(), "no exported structs") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate struct", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, dir, "a.go", "package p\n\ntype M struct{ A string }\n")
		writeFile(t, dir, "b.go", "package p\n\ntype M struct{ B string }\n")
		if _, _, err := Import(dir); err == nil || !strings.Contains(err.Error(), "declared in both") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad policy tag", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, dir, "a.go", "package p\n\ntype M struct {\n\tA string `policy:\"read: ((\"`\n}\n")
		if _, _, err := Import(dir); err == nil || !strings.Contains(err.Error(), "read policy") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("embedding cycle", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, dir, "a.go", "package p\n\n//scooter:skip\ntype A struct{ B }\n\n//scooter:skip\ntype B struct{ A }\n\ntype M struct{ A }\n")
		if _, _, err := Import(dir); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate column", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, dir, "a.go", "package p\n\ntype M struct {\n\tA string `db:\"x\"`\n\tB string `db:\"x\"`\n}\n")
		if _, _, err := Import(dir); err == nil || !strings.Contains(err.Error(), "duplicate field") {
			t.Fatalf("err = %v", err)
		}
	})
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnake(t *testing.T) {
	for in, want := range map[string]string{
		"Name":         "name",
		"CreatedAt":    "created_at",
		"BuyerID":      "buyer_id",
		"HTTPPort":     "http_port",
		"A":            "a",
		"PasswordHash": "password_hash",
		"IDNumber":     "id_number",
	} {
		if got := snake(in); got != want {
			t.Errorf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDirectiveArg(t *testing.T) {
	if arg, ok := directiveArg("//scooter:create public", "create"); !ok || arg != "public" {
		t.Fatalf("got %q %v", arg, ok)
	}
	if _, ok := directiveArg("//scooter:skipper", "skip"); ok {
		t.Fatalf("prefix must not match longer directive")
	}
	if arg, ok := directiveArg("//scooter:skip", "skip"); !ok || arg != "" {
		t.Fatalf("bare directive: %q %v", arg, ok)
	}
	if _, ok := directiveArg("// scooter:skip", "skip"); ok {
		t.Fatalf("directives must be flush against the slashes, like go:build")
	}
}
