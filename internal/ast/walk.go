package ast

import "sync"

// Walk calls fn on e and every sub-expression of e in pre-order. If fn
// returns false, the children of the current node are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *SetLit:
		for _, el := range n.Elems {
			Walk(el, fn)
		}
	case *Binary:
		Walk(n.Left, fn)
		Walk(n.Right, fn)
	case *If:
		Walk(n.Cond, fn)
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *Match:
		Walk(n.Scrutinee, fn)
		Walk(n.SomeArm, fn)
		Walk(n.NoneArm, fn)
	case *SomeLit:
		Walk(n.Arg, fn)
	case *FuncLit:
		Walk(n.Body, fn)
	case *Map:
		Walk(n.Recv, fn)
		Walk(n.Fn, fn)
	case *FlatMap:
		Walk(n.Recv, fn)
		Walk(n.Fn, fn)
	case *FieldAccess:
		Walk(n.Recv, fn)
	case *ById:
		Walk(n.Arg, fn)
	case *Find:
		for _, c := range n.Clauses {
			Walk(c.Value, fn)
		}
	}
}

// WalkPolicy walks the policy's function body, if it has one.
func WalkPolicy(p Policy, fn func(Expr) bool) {
	if p.Kind == PolicyFunc && p.Fn != nil {
		Walk(p.Fn, fn)
	}
}

// FieldRef identifies a model field.
type FieldRef struct {
	Model string
	Field string
}

// refSets holds the memoized reference sets of one expression.
type refSets struct {
	models map[string]bool
	fields map[FieldRef]bool
}

// refCache memoizes ReferencedModels/ReferencedFields per expression node.
// Policy ASTs are immutable once type-checked, and the migration engine
// consults these sets for every policy in the schema on each structural
// check, so each set is computed once per node and then shared. Entries
// live for the process lifetime, bounded by the number of distinct policy
// expressions.
var refCache sync.Map // Expr -> *refSets

func refsOf(e Expr) *refSets {
	if v, ok := refCache.Load(e); ok {
		return v.(*refSets)
	}
	r := &refSets{models: map[string]bool{}, fields: map[FieldRef]bool{}}
	Walk(e, func(e Expr) bool {
		switch n := e.(type) {
		case *FieldAccess:
			rt := n.Recv.Type()
			if rt.Kind == TModel {
				r.fields[FieldRef{Model: rt.Model, Field: n.Field}] = true
			}
		case *Find:
			r.models[n.Model] = true
			for _, c := range n.Clauses {
				r.fields[FieldRef{Model: n.Model, Field: c.Field}] = true
			}
		case *ById:
			r.models[n.Model] = true
		}
		return true
	})
	v, _ := refCache.LoadOrStore(e, r)
	return v.(*refSets)
}

// ReferencedModels returns the names of models referenced by the expression
// through Find or ById. The result is memoized and shared; callers must
// treat the map as read-only, and must not call this before the expression
// has been type-checked (the frozen result would miss receiver types used
// by ReferencedFields on the same node).
func ReferencedModels(e Expr) map[string]bool {
	return refsOf(e).models
}

// ReferencedFields returns every model field the (type-checked) expression
// reads, via direct access, Find clauses, or set-field traversal. It relies
// on the types recorded by the checker to resolve receivers. The result is
// memoized and shared; callers must treat the map as read-only.
func ReferencedFields(e Expr) map[FieldRef]bool {
	return refsOf(e).fields
}

// ReferencedVars returns the free variables of e given the bound set.
func ReferencedVars(e Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(e Expr, bound map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch n := e.(type) {
		case *Var:
			if !bound[n.Name] {
				out[n.Name] = true
			}
		case *SetLit:
			for _, el := range n.Elems {
				walk(el, bound)
			}
		case *Binary:
			walk(n.Left, bound)
			walk(n.Right, bound)
		case *If:
			walk(n.Cond, bound)
			walk(n.Then, bound)
			walk(n.Else, bound)
		case *Match:
			walk(n.Scrutinee, bound)
			inner := withBound(bound, n.Binder)
			walk(n.SomeArm, inner)
			walk(n.NoneArm, bound)
		case *SomeLit:
			walk(n.Arg, bound)
		case *FuncLit:
			walk(n.Body, withBound(bound, n.Param))
		case *Map:
			walk(n.Recv, bound)
			walk(n.Fn.Body, withBound(bound, n.Fn.Param))
		case *FlatMap:
			walk(n.Recv, bound)
			walk(n.Fn.Body, withBound(bound, n.Fn.Param))
		case *FieldAccess:
			walk(n.Recv, bound)
		case *ById:
			walk(n.Arg, bound)
		case *Find:
			for _, c := range n.Clauses {
				walk(c.Value, bound)
			}
		}
	}
	walk(e, map[string]bool{})
	return out
}

func withBound(bound map[string]bool, name string) map[string]bool {
	inner := make(map[string]bool, len(bound)+1)
	for k := range bound {
		inner[k] = true
	}
	inner[name] = true
	return inner
}
