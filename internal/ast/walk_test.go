package ast_test

import (
	"testing"

	"scooter/internal/ast"
	"scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/typer"
)

func typedExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	f, err := parser.ParsePolicyFile(`
@principal
User {
  create: public,
  delete: none,
  name: String { read: public, write: none },
  boss: Id(User) { read: public, write: none },
  level: I64 { read: public, write: none },
  friends: Set(Id(User)) { read: public, write: none },
  nick: Option(String) { read: public, write: none }}
`)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.FromPolicyFile(f)
	if err := typer.New(s).CheckSchema(); err != nil {
		t.Fatal(err)
	}
	p, err := parser.ParsePolicy("u -> " + src)
	if err != nil {
		t.Fatal(err)
	}
	if err := typer.New(s).CheckPolicy("User", p); err != nil {
		t.Fatal(err)
	}
	return p.Fn.Body
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e := typedExpr(t, `(if u.level > 0 then [u] else [u.boss]) + User::Find({name: "x"}).map(v -> v.id)`)
	count := 0
	ast.Walk(e, func(ast.Expr) bool {
		count++
		return true
	})
	if count < 10 {
		t.Errorf("walk visited only %d nodes", count)
	}
	// Early termination.
	count = 0
	ast.Walk(e, func(ast.Expr) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes", count)
	}
}

func TestReferencedModels(t *testing.T) {
	e := typedExpr(t, `User::Find({level: 1}) + [User::ById(u.boss)]`)
	got := ast.ReferencedModels(e)
	if !got["User"] || len(got) != 1 {
		t.Errorf("models: %v", got)
	}
}

func TestReferencedFields(t *testing.T) {
	e := typedExpr(t, `(if u.level > 0 then [u] else [u.boss]) + User::Find({name: "x"})`)
	got := ast.ReferencedFields(e)
	for _, want := range []ast.FieldRef{
		{Model: "User", Field: "level"},
		{Model: "User", Field: "boss"},
		{Model: "User", Field: "name"},
	} {
		if !got[want] {
			t.Errorf("missing %v in %v", want, got)
		}
	}
}

func TestReferencedVars(t *testing.T) {
	// v is bound by map; u and Admin-ish frees are reported.
	p, err := parser.ParsePolicy(`u -> u.friends.flat_map(v -> User::ById(v).friends) + [w]`)
	if err != nil {
		t.Fatal(err)
	}
	free := ast.ReferencedVars(p.Fn.Body)
	if !free["u"] || !free["w"] {
		t.Errorf("free vars: %v", free)
	}
	if free["v"] {
		t.Errorf("bound var reported free: %v", free)
	}
	// Match binder scoping.
	p, err = parser.ParsePolicy(`u -> match u.nick as n in [x] else [n]`)
	if err != nil {
		t.Fatal(err)
	}
	free = ast.ReferencedVars(p.Fn.Body)
	if !free["x"] || !free["n"] {
		// n is free in the else arm (only bound in the some arm).
		t.Errorf("free vars: %v", free)
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[string]string{
		`public`:                     "public",
		`none`:                       "none",
		`u -> [u.boss]`:              "u -> [u.boss]",
		`_ -> [u] - [u]`:             "_ -> ([u] - [u])",
		`u -> Some(u.level) == None`: "u -> (Some(u.level) == None)",
	}
	for src, want := range cases {
		p, err := parser.ParsePolicy(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := p.String(); got != want {
			t.Errorf("String(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestTypeStringAndEqual(t *testing.T) {
	cases := map[string]ast.Type{
		"String":         ast.StringType,
		"I64":            ast.I64Type,
		"F64":            ast.F64Type,
		"Bool":           ast.BoolType,
		"DateTime":       ast.DateTimeType,
		"Id(User)":       ast.IdType("User"),
		"Set(Id(User))":  ast.SetType(ast.IdType("User")),
		"Option(String)": ast.OptionType(ast.StringType),
		"Set(Set(I64))":  ast.SetType(ast.SetType(ast.I64Type)),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		if !typ.Equal(typ) {
			t.Errorf("%v not equal to itself", typ)
		}
	}
	if ast.IdType("A").Equal(ast.IdType("B")) {
		t.Error("distinct id types compare equal")
	}
	if ast.SetType(ast.I64Type).Equal(ast.SetType(ast.F64Type)) {
		t.Error("distinct set types compare equal")
	}
}

func TestExprPrintingCoverage(t *testing.T) {
	// Every expression form prints and re-parses.
	srcs := []string{
		`"s"`, `42`, `-7`, `2.5`, `true`, `false`, `now`, `public`,
		`d12-31-1999-23:59:59`,
		`[a, b]`, `[]`,
		`(a + b)`, `(a - b)`, `(a < b)`, `(a <= b)`, `(a > b)`, `(a >= b)`,
		`(a == b)`, `(a != b)`,
		`(if c then a else b)`,
		`(match o as v in [v] else [])`,
		`None`, `Some(x)`,
		`xs.map(v -> v)`, `xs.flat_map(v -> v.ys)`,
		`r.field`, `M::ById(i)`,
		`M::Find({f: 1, g >= 2, h < 3})`,
	}
	for _, src := range srcs {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := e.String()
		if _, err := parser.ParseExpr(printed); err != nil {
			t.Errorf("printed form of %q does not re-parse: %q: %v", src, printed, err)
		}
	}
}

func TestCommandPrintingCoverage(t *testing.T) {
	script := `
CreateModel(M { create: public, delete: none, f: I64 { read: public, write: none } });
DeleteModel(M);
M::AddField(g: String { read: public, write: none }, _ -> "");
M::RemoveField(g);
M::UpdatePolicy(create, none);
M::WeakenPolicy(create, public, "why");
M::UpdateFieldPolicy(f, { read: public, write: none });
M::WeakenFieldPolicy(f, { read: public }, "why");
AddStaticPrincipal(P);
RemoveStaticPrincipal(P);
AddPrincipal(M);
RemovePrincipal(M);
`
	s, err := parser.ParseMigration(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Commands) != 12 {
		t.Fatalf("commands: %d", len(s.Commands))
	}
	for _, cmd := range s.Commands {
		if cmd.String() == "" || cmd.Name() == "" {
			t.Errorf("command %T prints empty", cmd)
		}
		if !cmd.CmdPos().IsValid() {
			t.Errorf("command %T lost its position", cmd)
		}
	}
}
