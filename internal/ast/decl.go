package ast

import (
	"fmt"
	"strings"

	"scooter/internal/token"
)

// Policy is a policy function: `public`, `none`, or `var -> expr` with type
// m -> Set(Principal) for the model m it is attached to.
type Policy struct {
	// Kind discriminates the three forms.
	Kind PolicyKind
	// Fn is set when Kind == PolicyFunc.
	Fn  *FuncLit
	Pos token.Pos
}

// PolicyKind discriminates policy forms.
type PolicyKind int

// Policy forms: public (all principals), none (no principals), or an
// explicit function.
const (
	PolicyPublic PolicyKind = iota
	PolicyNone
	PolicyFunc
)

// PublicPolicy returns the `public` policy.
func PublicPolicy(pos token.Pos) Policy { return Policy{Kind: PolicyPublic, Pos: pos} }

// NonePolicy returns the `none` policy.
func NonePolicy(pos token.Pos) Policy { return Policy{Kind: PolicyNone, Pos: pos} }

// FuncPolicy returns a function policy.
func FuncPolicy(fn *FuncLit) Policy { return Policy{Kind: PolicyFunc, Fn: fn, Pos: fn.Pos()} }

func (p Policy) String() string {
	switch p.Kind {
	case PolicyPublic:
		return "public"
	case PolicyNone:
		return "none"
	default:
		return p.Fn.String()
	}
}

// IsZero reports whether p is the zero Policy (unset).
func (p Policy) IsZero() bool { return p.Kind == PolicyPublic && p.Fn == nil && !p.Pos.IsValid() }

// Operation names the four CRUD operations plus the model-level create and
// delete operations policies attach to.
type Operation string

// The operations a policy can govern. Create and Delete attach to models;
// Read and Write attach to fields.
const (
	OpCreate Operation = "create"
	OpDelete Operation = "delete"
	OpRead   Operation = "read"
	OpWrite  Operation = "write"
)

// FieldDecl declares a field: name, type, and read/write policies.
type FieldDecl struct {
	Name  string
	Type  Type
	Read  Policy
	Write Policy
	Pos   token.Pos
}

func (f *FieldDecl) String() string {
	return fmt.Sprintf("%s: %s { read: %s, write: %s }", f.Name, f.Type, f.Read, f.Write)
}

// ModelDecl declares a model with its create/delete policies and fields.
type ModelDecl struct {
	Name      string
	Principal bool // annotated @principal
	Create    Policy
	Delete    Policy
	Fields    []*FieldDecl
	Pos       token.Pos
}

// Field returns the declared field with the given name, or nil.
func (m *ModelDecl) Field(name string) *FieldDecl {
	for _, f := range m.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func (m *ModelDecl) String() string {
	var sb strings.Builder
	if m.Principal {
		sb.WriteString("@principal\n")
	}
	fmt.Fprintf(&sb, "%s {\n", m.Name)
	fmt.Fprintf(&sb, "  create: %s,\n", m.Create)
	fmt.Fprintf(&sb, "  delete: %s,\n", m.Delete)
	for _, f := range m.Fields {
		fmt.Fprintf(&sb, "  %s,\n", f)
	}
	sb.WriteString("}")
	return sb.String()
}

// StaticPrincipalDecl declares a static principal (e.g. Unauthenticated).
type StaticPrincipalDecl struct {
	Name string
	Pos  token.Pos
}

// PolicyFile is a parsed Scooter_p file: the authoritative specification of
// static principals and models.
type PolicyFile struct {
	Statics []*StaticPrincipalDecl
	Models  []*ModelDecl
}

// Model returns the model with the given name, or nil.
func (f *PolicyFile) Model(name string) *ModelDecl {
	for _, m := range f.Models {
		if m.Name == name {
			return m
		}
	}
	return nil
}
