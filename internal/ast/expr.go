package ast

import (
	"fmt"
	"strings"

	"scooter/internal/token"
)

// Expr is a Scooter value expression (Figure 3 of the paper). Expressions
// are shared between policy functions and migration initialisers.
type Expr interface {
	exprNode()
	// Pos returns the source position of the expression.
	Pos() token.Pos
	// Type returns the type assigned by the checker (zero until checked).
	Type() Type
	// SetType records the checked type.
	SetType(Type)
	fmt.Stringer
}

type exprBase struct {
	pos token.Pos
	typ Type
}

func (b *exprBase) exprNode()      {}
func (b *exprBase) Pos() token.Pos { return b.pos }
func (b *exprBase) Type() Type     { return b.typ }
func (b *exprBase) SetType(t Type) { b.typ = t }

// Base returns an exprBase at pos, for constructing nodes.
func base(pos token.Pos) exprBase { return exprBase{pos: pos} }

// ---- Constants ----

// StringLit is a string constant.
type StringLit struct {
	exprBase
	Value string
}

// IntLit is an integer constant.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a float constant.
type FloatLit struct {
	exprBase
	Value float64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
}

// DateTimeLit is a datetime constant, stored as a UNIX timestamp.
type DateTimeLit struct {
	exprBase
	Unix int64
	Raw  string // original literal text, for printing
}

// Now is the `now` datetime constructor. Sidecar models it as a single
// unconstrained value shared by both policies under comparison.
type Now struct {
	exprBase
}

// Public is the `public` constant: the set of all principals.
type Public struct {
	exprBase
}

// ---- Variables, sets, operators ----

// Var is a variable reference.
type Var struct {
	exprBase
	Name string
}

// SetLit is a set literal [e0, ..., en].
type SetLit struct {
	exprBase
	Elems []Expr
}

// BinOp is the binary operator kind.
type BinOp int

// Binary operators. Add/Sub apply to numbers and sets (set union and
// subtraction); the comparisons apply per Figure 3.
const (
	OpAdd BinOp = iota // +
	OpSub              // -
	OpLt               // <
	OpLe               // <=
	OpGt               // >
	OpGe               // >=
	OpEq               // ==
	OpNe               // !=
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsComparison reports whether op yields Bool.
func (op BinOp) IsComparison() bool { return op >= OpLt }

// Binary is e1 op e2.
type Binary struct {
	exprBase
	Op    BinOp
	Left  Expr
	Right Expr
}

// ---- Control flow ----

// If is `if cond then then else els`.
type If struct {
	exprBase
	Cond Expr
	Then Expr
	Else Expr
}

// Match is `match e as v in some else none`: if e is Some(x), evaluate the
// Some branch with v bound to x, otherwise the else branch.
type Match struct {
	exprBase
	Scrutinee Expr
	Binder    string
	SomeArm   Expr
	NoneArm   Expr
}

// NoneLit is the Option constructor None.
type NoneLit struct {
	exprBase
	// ElemType is inferred by the checker from context.
	ElemType Type
}

// SomeLit is the Option constructor Some(e).
type SomeLit struct {
	exprBase
	Arg Expr
}

// ---- Collections and model access ----

// FuncLit is an anonymous function var -> body (Figure 3 `func`).
type FuncLit struct {
	exprBase
	Param     string // "_" for ignored parameter
	ParamType Type   // filled by the checker
	Body      Expr
}

// Map is e.map(f).
type Map struct {
	exprBase
	Recv Expr
	Fn   *FuncLit
}

// FlatMap is e.flat_map(f).
type FlatMap struct {
	exprBase
	Recv Expr
	Fn   *FuncLit
}

// FieldAccess is e.field.
type FieldAccess struct {
	exprBase
	Recv  Expr
	Field string
}

// ById is Model::ById(e), resolving an id to an instance.
type ById struct {
	exprBase
	Model string
	Arg   Expr
}

// FindOp is a Find clause operator (Figure 3 `fop`).
type FindOp int

// Find operators: `:` equality; `>` set-containment (on set fields);
// numeric comparisons.
const (
	FindEq       FindOp = iota // field: value
	FindContains               // field > value  (set field contains value)
	FindLt
	FindLe
	FindGt
	FindGe
)

func (op FindOp) String() string {
	switch op {
	case FindEq:
		return ":"
	case FindContains:
		return ">"
	case FindLt:
		return "<"
	case FindLe:
		return "<="
	case FindGt:
		return ">"
	case FindGe:
		return ">="
	}
	return fmt.Sprintf("FindOp(%d)", int(op))
}

// FindClause is one `field fop value` criterion.
type FindClause struct {
	Field string
	Op    FindOp
	Value Expr
	Pos   token.Pos
}

// Find is Model::Find({f1 op1 e1, ..., fn opn en}), the set of instances
// matching every clause.
type Find struct {
	exprBase
	Model   string
	Clauses []FindClause
}

// ---- Printing ----

func (e *StringLit) String() string   { return fmt.Sprintf("%q", e.Value) }
func (e *IntLit) String() string      { return fmt.Sprintf("%d", e.Value) }
func (e *FloatLit) String() string    { return trimFloat(e.Value) }
func (e *BoolLit) String() string     { return fmt.Sprintf("%t", e.Value) }
func (e *DateTimeLit) String() string { return e.Raw }
func (e *Now) String() string         { return "now" }
func (e *Public) String() string      { return "public" }
func (e *Var) String() string         { return e.Name }

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (e *SetLit) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

func (e *If) String() string {
	return fmt.Sprintf("(if %s then %s else %s)", e.Cond, e.Then, e.Else)
}

func (e *Match) String() string {
	return fmt.Sprintf("(match %s as %s in %s else %s)", e.Scrutinee, e.Binder, e.SomeArm, e.NoneArm)
}

func (e *NoneLit) String() string { return "None" }
func (e *SomeLit) String() string { return fmt.Sprintf("Some(%s)", e.Arg) }

func (e *FuncLit) String() string {
	return fmt.Sprintf("%s -> %s", e.Param, e.Body)
}

func (e *Map) String() string {
	return fmt.Sprintf("%s.map(%s)", e.Recv, e.Fn)
}

func (e *FlatMap) String() string {
	return fmt.Sprintf("%s.flat_map(%s)", e.Recv, e.Fn)
}

func (e *FieldAccess) String() string {
	return fmt.Sprintf("%s.%s", e.Recv, e.Field)
}

func (e *ById) String() string {
	return fmt.Sprintf("%s::ById(%s)", e.Model, e.Arg)
}

func (e *Find) String() string {
	parts := make([]string, len(e.Clauses))
	for i, c := range e.Clauses {
		if c.Op == FindEq {
			parts[i] = fmt.Sprintf("%s: %s", c.Field, c.Value)
		} else {
			parts[i] = fmt.Sprintf("%s %s %s", c.Field, c.Op, c.Value)
		}
	}
	return fmt.Sprintf("%s::Find({%s})", e.Model, strings.Join(parts, ", "))
}

// ---- Constructors used by the parser ----

// NewStringLit returns a string literal node.
func NewStringLit(pos token.Pos, v string) *StringLit { return &StringLit{base(pos), v} }

// NewIntLit returns an integer literal node.
func NewIntLit(pos token.Pos, v int64) *IntLit { return &IntLit{base(pos), v} }

// NewFloatLit returns a float literal node.
func NewFloatLit(pos token.Pos, v float64) *FloatLit { return &FloatLit{base(pos), v} }

// NewBoolLit returns a boolean literal node.
func NewBoolLit(pos token.Pos, v bool) *BoolLit { return &BoolLit{base(pos), v} }

// NewDateTimeLit returns a datetime literal node.
func NewDateTimeLit(pos token.Pos, unix int64, raw string) *DateTimeLit {
	return &DateTimeLit{base(pos), unix, raw}
}

// NewNow returns a `now` node.
func NewNow(pos token.Pos) *Now { return &Now{base(pos)} }

// NewPublic returns a `public` node.
func NewPublic(pos token.Pos) *Public { return &Public{base(pos)} }

// NewVar returns a variable reference node.
func NewVar(pos token.Pos, name string) *Var { return &Var{base(pos), name} }

// NewSetLit returns a set literal node.
func NewSetLit(pos token.Pos, elems []Expr) *SetLit { return &SetLit{base(pos), elems} }

// NewBinary returns a binary operation node.
func NewBinary(pos token.Pos, op BinOp, l, r Expr) *Binary { return &Binary{base(pos), op, l, r} }

// NewIf returns an if expression node.
func NewIf(pos token.Pos, c, t, e Expr) *If { return &If{base(pos), c, t, e} }

// NewMatch returns a match expression node.
func NewMatch(pos token.Pos, scrut Expr, binder string, someArm, noneArm Expr) *Match {
	return &Match{base(pos), scrut, binder, someArm, noneArm}
}

// NewNoneLit returns a None node.
func NewNoneLit(pos token.Pos) *NoneLit { return &NoneLit{exprBase: base(pos)} }

// NewSomeLit returns a Some(e) node.
func NewSomeLit(pos token.Pos, arg Expr) *SomeLit { return &SomeLit{base(pos), arg} }

// NewFuncLit returns an anonymous function node.
func NewFuncLit(pos token.Pos, param string, body Expr) *FuncLit {
	return &FuncLit{exprBase: base(pos), Param: param, Body: body}
}

// NewMap returns a map node.
func NewMap(pos token.Pos, recv Expr, fn *FuncLit) *Map { return &Map{base(pos), recv, fn} }

// NewFlatMap returns a flat_map node.
func NewFlatMap(pos token.Pos, recv Expr, fn *FuncLit) *FlatMap {
	return &FlatMap{base(pos), recv, fn}
}

// NewFieldAccess returns a field access node.
func NewFieldAccess(pos token.Pos, recv Expr, field string) *FieldAccess {
	return &FieldAccess{base(pos), recv, field}
}

// NewById returns a Model::ById(e) node.
func NewById(pos token.Pos, model string, arg Expr) *ById { return &ById{base(pos), model, arg} }

// NewFind returns a Model::Find({...}) node.
func NewFind(pos token.Pos, model string, clauses []FindClause) *Find {
	return &Find{base(pos), model, clauses}
}
