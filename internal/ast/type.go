// Package ast defines the abstract syntax of the Scooter policy language
// (Scooter_p) and migration language (Scooter_m), which share a common
// expression core (Figure 3 of the paper).
package ast

import "fmt"

// TypeKind discriminates Scooter types.
type TypeKind int

const (
	// TInvalid marks a missing or erroneous type.
	TInvalid TypeKind = iota
	// TString is the String type.
	TString
	// TI64 is the 64-bit integer type.
	TI64
	// TF64 is the 64-bit float type.
	TF64
	// TBool is the boolean type.
	TBool
	// TDateTime is the datetime type (a UNIX timestamp at runtime).
	TDateTime
	// TId is Id(Model), a typed reference to a model instance.
	TId
	// TSet is Set(Elem).
	TSet
	// TOption is Option(Elem).
	TOption
	// TPrincipal is the type of principals; policy functions return
	// Set(Principal). Ids of @principal models and static principals
	// coerce to it.
	TPrincipal
	// TModel is the type of a model instance (the parameter of a policy
	// function). It appears only during type checking, never in schemas.
	TModel
	// TBlob is opaque binary data (§6.1 extension): storable and copyable
	// between fields, but never referenced inside policy functions, so the
	// verifier does not reason about its values.
	TBlob
)

// Type is a Scooter type. Model carries the model name for TId and TModel;
// Elem carries the element type for TSet and TOption.
type Type struct {
	Kind  TypeKind
	Model string
	Elem  *Type
}

// Convenience constructors.
var (
	StringType    = Type{Kind: TString}
	BlobType      = Type{Kind: TBlob}
	I64Type       = Type{Kind: TI64}
	F64Type       = Type{Kind: TF64}
	BoolType      = Type{Kind: TBool}
	DateTimeType  = Type{Kind: TDateTime}
	PrincipalType = Type{Kind: TPrincipal}
)

// IdType returns Id(model).
func IdType(model string) Type { return Type{Kind: TId, Model: model} }

// ModelType returns the instance type of model.
func ModelType(model string) Type { return Type{Kind: TModel, Model: model} }

// SetType returns Set(elem).
func SetType(elem Type) Type { return Type{Kind: TSet, Elem: &elem} }

// OptionType returns Option(elem).
func OptionType(elem Type) Type { return Type{Kind: TOption, Elem: &elem} }

// PrincipalSetType is Set(Principal), the return type of every policy function.
func PrincipalSetType() Type { return SetType(PrincipalType) }

// Equal reports structural type equality.
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind || t.Model != u.Model {
		return false
	}
	if (t.Elem == nil) != (u.Elem == nil) {
		return false
	}
	if t.Elem != nil {
		return t.Elem.Equal(*u.Elem)
	}
	return true
}

// IsSet reports whether t is a Set type.
func (t Type) IsSet() bool { return t.Kind == TSet }

// IsNumeric reports whether t supports numeric comparison.
func (t Type) IsNumeric() bool {
	return t.Kind == TI64 || t.Kind == TF64 || t.Kind == TDateTime
}

func (t Type) String() string {
	switch t.Kind {
	case TInvalid:
		return "<invalid>"
	case TString:
		return "String"
	case TI64:
		return "I64"
	case TF64:
		return "F64"
	case TBool:
		return "Bool"
	case TDateTime:
		return "DateTime"
	case TId:
		return fmt.Sprintf("Id(%s)", t.Model)
	case TSet:
		return fmt.Sprintf("Set(%s)", t.Elem)
	case TOption:
		return fmt.Sprintf("Option(%s)", t.Elem)
	case TPrincipal:
		return "Principal"
	case TModel:
		return t.Model
	case TBlob:
		return "Blob"
	}
	return fmt.Sprintf("Type(%d)", int(t.Kind))
}

// ReferencedModels returns the model names mentioned anywhere in t.
func (t Type) ReferencedModels() []string {
	var out []string
	var walk func(Type)
	walk = func(t Type) {
		if t.Model != "" {
			out = append(out, t.Model)
		}
		if t.Elem != nil {
			walk(*t.Elem)
		}
	}
	walk(t)
	return out
}

// ParseScalarType maps a type-name identifier to a scalar type, if known.
func ParseScalarType(name string) (Type, bool) {
	switch name {
	case "String":
		return StringType, true
	case "I64", "Int":
		return I64Type, true
	case "F64", "Float":
		return F64Type, true
	case "Bool":
		return BoolType, true
	case "DateTime":
		return DateTimeType, true
	case "Principal":
		return PrincipalType, true
	case "Blob":
		return BlobType, true
	}
	return Type{}, false
}
