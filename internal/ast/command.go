package ast

import (
	"fmt"
	"strings"

	"scooter/internal/token"
)

// Command is a single Scooter_m migration command.
type Command interface {
	commandNode()
	// CmdPos returns the command's source position.
	CmdPos() token.Pos
	// Name returns the command's action name (e.g. "AddField"), used in
	// diagnostics and the Figure-5 "migration actions" metric.
	Name() string
	fmt.Stringer
}

type CmdBase struct{ pos token.Pos }

func (c CmdBase) commandNode()      {}
func (c CmdBase) CmdPos() token.Pos { return c.pos }

// CreateModel creates a new model with full policies.
type CreateModel struct {
	CmdBase
	Model *ModelDecl
}

// DeleteModel removes a model; fails if other policies reference it.
type DeleteModel struct {
	CmdBase
	ModelName string
}

// AddField adds a field to a model. Init populates existing rows and is
// required (paper §3.2).
type AddField struct {
	CmdBase
	ModelName string
	Field     *FieldDecl
	Init      *FuncLit
}

// RemoveField removes a field; fails if other policies reference it.
type RemoveField struct {
	CmdBase
	ModelName string
	FieldName string
}

// UpdatePolicy replaces a model-level (create/delete) policy; the verifier
// proves the new policy at least as strict as the old.
type UpdatePolicy struct {
	CmdBase
	ModelName string
	Op        Operation
	NewPolicy Policy
}

// WeakenPolicy replaces a model-level policy without a strictness proof; a
// reason is required to aid auditing.
type WeakenPolicy struct {
	CmdBase
	ModelName string
	Op        Operation
	NewPolicy Policy
	Reason    string
}

// UpdateFieldPolicy replaces one or both field policies with strictness
// proofs. Read/Write are optional; unset ones keep the old policy.
type UpdateFieldPolicy struct {
	CmdBase
	ModelName string
	FieldName string
	Read      *Policy
	Write     *Policy
}

// WeakenFieldPolicy replaces field policies without strictness proofs.
type WeakenFieldPolicy struct {
	CmdBase
	ModelName string
	FieldName string
	Read      *Policy
	Write     *Policy
	Reason    string
}

// AddStaticPrincipal declares a new static principal.
type AddStaticPrincipal struct {
	CmdBase
	PrincipalName string
}

// RemoveStaticPrincipal removes a static principal; fails if any policy
// references it.
type RemoveStaticPrincipal struct {
	CmdBase
	PrincipalName string
}

// AddPrincipal marks an existing model as a dynamic principal.
type AddPrincipal struct {
	CmdBase
	ModelName string
}

// RemovePrincipal unmarks a model as a dynamic principal; fails if its ids
// are used as principals in any policy.
type RemovePrincipal struct {
	CmdBase
	ModelName string
}

// MigrationScript is a parsed Scooter_m file: an ordered command list that
// is verified as a whole before any of it executes.
type MigrationScript struct {
	Commands []Command
}

func (c *CreateModel) Name() string           { return "CreateModel" }
func (c *DeleteModel) Name() string           { return "DeleteModel" }
func (c *AddField) Name() string              { return "AddField" }
func (c *RemoveField) Name() string           { return "RemoveField" }
func (c *UpdatePolicy) Name() string          { return "UpdatePolicy" }
func (c *WeakenPolicy) Name() string          { return "WeakenPolicy" }
func (c *UpdateFieldPolicy) Name() string     { return "UpdateFieldPolicy" }
func (c *WeakenFieldPolicy) Name() string     { return "WeakenFieldPolicy" }
func (c *AddStaticPrincipal) Name() string    { return "AddStaticPrincipal" }
func (c *RemoveStaticPrincipal) Name() string { return "RemoveStaticPrincipal" }
func (c *AddPrincipal) Name() string          { return "AddPrincipal" }
func (c *RemovePrincipal) Name() string       { return "RemovePrincipal" }

func (c *CreateModel) String() string {
	return fmt.Sprintf("CreateModel(%s);", strings.TrimSuffix(c.Model.String(), "\n"))
}

func (c *DeleteModel) String() string { return fmt.Sprintf("DeleteModel(%s);", c.ModelName) }

func (c *AddField) String() string {
	return fmt.Sprintf("%s::AddField(%s, %s);", c.ModelName, c.Field, c.Init)
}

func (c *RemoveField) String() string {
	return fmt.Sprintf("%s::RemoveField(%s);", c.ModelName, c.FieldName)
}

func (c *UpdatePolicy) String() string {
	return fmt.Sprintf("%s::UpdatePolicy(%s, %s);", c.ModelName, c.Op, c.NewPolicy)
}

func (c *WeakenPolicy) String() string {
	return fmt.Sprintf("%s::WeakenPolicy(%s, %s, %q);", c.ModelName, c.Op, c.NewPolicy, c.Reason)
}

func fieldPolicyBody(read, write *Policy) string {
	var parts []string
	if read != nil {
		parts = append(parts, fmt.Sprintf("read: %s", *read))
	}
	if write != nil {
		parts = append(parts, fmt.Sprintf("write: %s", *write))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (c *UpdateFieldPolicy) String() string {
	return fmt.Sprintf("%s::UpdateFieldPolicy(%s, %s);", c.ModelName, c.FieldName, fieldPolicyBody(c.Read, c.Write))
}

func (c *WeakenFieldPolicy) String() string {
	return fmt.Sprintf("%s::WeakenFieldPolicy(%s, %s, %q);", c.ModelName, c.FieldName, fieldPolicyBody(c.Read, c.Write), c.Reason)
}

func (c *AddStaticPrincipal) String() string {
	return fmt.Sprintf("AddStaticPrincipal(%s);", c.PrincipalName)
}

func (c *RemoveStaticPrincipal) String() string {
	return fmt.Sprintf("RemoveStaticPrincipal(%s);", c.PrincipalName)
}

func (c *AddPrincipal) String() string { return fmt.Sprintf("AddPrincipal(%s);", c.ModelName) }

func (c *RemovePrincipal) String() string { return fmt.Sprintf("RemovePrincipal(%s);", c.ModelName) }

// NewCmdBase constructs the embedded base for a command at pos.
func NewCmdBase(pos token.Pos) CmdBase { return CmdBase{pos: pos} }
