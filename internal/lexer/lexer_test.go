package lexer

import (
	"testing"

	"scooter/internal/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("+ - < <= > >= == != -> : :: , ; . ( ) { } [ ] @ _")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{
		token.PLUS, token.MINUS, token.LT, token.LE, token.GT, token.GE,
		token.EQ, token.NE, token.ARROW, token.COLON, token.DOUBLECOL,
		token.COMMA, token.SEMI, token.DOT, token.LPAREN, token.RPAREN,
		token.LBRACE, token.RBRACE, token.LBRACKET, token.RBRACKET,
		token.AT, token.UNDER, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, err := Tokenize("true false public none now if then else match as in Some None User u")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{
		token.KwTrue, token.KwFalse, token.KwPublic, token.KwNone, token.KwNow,
		token.KwIf, token.KwThen, token.KwElse, token.KwMatch, token.KwAs,
		token.KwIn, token.KwSome, token.KwNoneOpt, token.IDENT, token.IDENT,
		token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[13].Text != "User" || toks[14].Text != "u" {
		t.Errorf("identifier texts wrong: %v %v", toks[13], toks[14])
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("42 0 3.14 2.0")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind token.Kind
		text string
	}{
		{token.INT, "42"}, {token.INT, "0"}, {token.FLOAT, "3.14"}, {token.FLOAT, "2.0"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestIntFollowedByDotField(t *testing.T) {
	// "1.x" must not be a float: INT DOT IDENT.
	toks, err := Tokenize("u.id")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.IDENT, token.DOT, token.IDENT, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := Tokenize(`"hello" "a\nb" "q\"q" ""`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "a\nb", `q"q`, ""}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Text != w {
			t.Errorf("string %d: got %v, want %q", i, toks[i], w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, err := Tokenize(`"oops`)
	if err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("a # comment here\nb // slash comment\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range []string{"a", "b", "c"} {
		if toks[i].Text != w {
			t.Errorf("token %d: got %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestDateTimeLiteral(t *testing.T) {
	toks, err := Tokenize("d4-2-2021-13:59:59")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.DATETIME {
		t.Fatalf("got %v, want DATETIME", toks[0])
	}
	ts, err := ParseDateTime(toks[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatDateTime(ts); got != "d4-2-2021-13:59:59" {
		t.Errorf("round trip: got %q", got)
	}
}

func TestDateTimeVsIdent(t *testing.T) {
	// `d` alone, or followed by non-digit, is an identifier.
	toks, err := Tokenize("d date d2x")
	if err == nil {
		// d2x: 'd' then digit => datetime scan begins, then fails on 'x'...
		// Actually "d2" scans digits/dashes/colons only; "d2" is an invalid
		// datetime, so an error is expected.
		t.Fatalf("expected error for malformed datetime, got %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	_, err := Tokenize("a $ b")
	if err == nil {
		t.Fatal("expected error for '$'")
	}
}

func TestSingleEquals(t *testing.T) {
	_, err := Tokenize("a = b")
	if err == nil {
		t.Fatal("expected error for single '='")
	}
}

func TestPolicySnippet(t *testing.T) {
	src := `
@principal
User {
  create: _ -> [Unauthenticated],
  name: String {
    read: public,
    write: u -> [u.id]},
  adminLevel: I64 {
    read: public,
    write: u -> User::Find({adminLevel: 2}).map(u -> u.id)}}
`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].Kind != token.EOF {
		t.Fatal("missing EOF")
	}
	// Spot check the Find tokenization.
	var sawFind, sawDoubleCol bool
	for _, tk := range toks {
		if tk.Kind == token.IDENT && tk.Text == "Find" {
			sawFind = true
		}
		if tk.Kind == token.DOUBLECOL {
			sawDoubleCol = true
		}
	}
	if !sawFind || !sawDoubleCol {
		t.Error("expected Find and :: in token stream")
	}
}

func TestParseDateTimeErrors(t *testing.T) {
	bad := []string{"d13-1-2020-00:00:00", "d1-40-2020-00:00:00", "d1-1-2020-25:00:00", "d1-1-2020", "x1-1-2020-00:00:00"}
	for _, s := range bad {
		if _, err := ParseDateTime(s); err == nil {
			t.Errorf("ParseDateTime(%q): expected error", s)
		}
	}
}
