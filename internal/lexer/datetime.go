package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseDateTime parses a Scooter datetime literal of the form
// d<month>-<day>-<year>-<hour>:<minute>:<second> into a UNIX timestamp.
// Scooter models DateTime values as UNIX timestamps (seconds, UTC), which is
// also how Sidecar encodes them for the solver.
func ParseDateTime(lit string) (int64, error) {
	if !strings.HasPrefix(lit, "d") {
		return 0, fmt.Errorf("datetime literal must start with 'd'")
	}
	body := lit[1:]
	// Split date from time on the final '-'.
	dash := strings.LastIndexByte(body, '-')
	if dash < 0 {
		return 0, fmt.Errorf("missing time component")
	}
	datePart, timePart := body[:dash], body[dash+1:]
	dp := strings.Split(datePart, "-")
	if len(dp) != 3 {
		return 0, fmt.Errorf("date must be <month>-<day>-<year>")
	}
	tp := strings.Split(timePart, ":")
	if len(tp) != 3 {
		return 0, fmt.Errorf("time must be <hour>:<minute>:<second>")
	}
	nums := make([]int, 6)
	for i, s := range append(dp, tp...) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("invalid number %q", s)
		}
		nums[i] = n
	}
	month, day, year, hour, minute, second := nums[0], nums[1], nums[2], nums[3], nums[4], nums[5]
	if month < 1 || month > 12 {
		return 0, fmt.Errorf("month %d out of range", month)
	}
	if day < 1 || day > 31 {
		return 0, fmt.Errorf("day %d out of range", day)
	}
	if hour < 0 || hour > 23 {
		return 0, fmt.Errorf("hour %d out of range", hour)
	}
	if minute < 0 || minute > 59 {
		return 0, fmt.Errorf("minute %d out of range", minute)
	}
	if second < 0 || second > 59 {
		return 0, fmt.Errorf("second %d out of range", second)
	}
	t := time.Date(year, time.Month(month), day, hour, minute, second, 0, time.UTC)
	return t.Unix(), nil
}

// FormatDateTime renders a UNIX timestamp as a Scooter datetime literal.
func FormatDateTime(unix int64) string {
	t := time.Unix(unix, 0).UTC()
	return fmt.Sprintf("d%d-%d-%d-%02d:%02d:%02d",
		int(t.Month()), t.Day(), t.Year(), t.Hour(), t.Minute(), t.Second())
}
