// Package lexer tokenizes Scooter policy files and migration scripts.
//
// The two surface languages (Scooter_p and Scooter_m) share a lexical
// grammar: identifiers, integer/float/string/datetime literals, a small
// operator set, and `#`-to-end-of-line comments.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"scooter/internal/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an input string into tokens.
type Lexer struct {
	src   string
	off   int // byte offset of next rune
	line  int
	col   int
	errs  []*Error
	toks  []token.Token
	begin token.Pos // position of the token currently being scanned
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning the token stream (terminated by
// an EOF token) and the first error encountered, if any.
func Tokenize(src string) ([]token.Token, error) {
	l := New(src)
	toks := l.All()
	if len(l.errs) > 0 {
		return toks, l.errs[0]
	}
	return toks, nil
}

// All scans the entire input and returns all tokens including a final EOF.
func (l *Lexer) All() []token.Token {
	for {
		t := l.next()
		l.toks = append(l.toks, t)
		if t.Kind == token.EOF {
			return l.toks
		}
	}
}

// Errors returns all lexical errors encountered.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return 0
	}
	r2, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r2
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == '#':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) next() token.Token {
	l.skipSpaceAndComments()
	l.begin = l.pos()
	r := l.peek()
	switch {
	case r == 0:
		return l.make(token.EOF, "")
	case isIdentStart(r):
		return l.scanIdent()
	case unicode.IsDigit(r):
		return l.scanNumber()
	case r == '"':
		return l.scanString()
	}
	l.advance()
	switch r {
	case '+':
		return l.make(token.PLUS, "+")
	case '-':
		if l.peek() == '>' {
			l.advance()
			return l.make(token.ARROW, "->")
		}
		return l.make(token.MINUS, "-")
	case '<':
		if l.peek() == '=' {
			l.advance()
			return l.make(token.LE, "<=")
		}
		return l.make(token.LT, "<")
	case '>':
		if l.peek() == '=' {
			l.advance()
			return l.make(token.GE, ">=")
		}
		return l.make(token.GT, ">")
	case '=':
		if l.peek() == '=' {
			l.advance()
			return l.make(token.EQ, "==")
		}
		l.errorf(l.begin, "unexpected '='; Scooter uses '==' for equality")
		return l.make(token.ILLEGAL, "=")
	case '!':
		if l.peek() == '=' {
			l.advance()
			return l.make(token.NE, "!=")
		}
		l.errorf(l.begin, "unexpected '!'")
		return l.make(token.ILLEGAL, "!")
	case ':':
		if l.peek() == ':' {
			l.advance()
			return l.make(token.DOUBLECOL, "::")
		}
		return l.make(token.COLON, ":")
	case ',':
		return l.make(token.COMMA, ",")
	case ';':
		return l.make(token.SEMI, ";")
	case '.':
		return l.make(token.DOT, ".")
	case '(':
		return l.make(token.LPAREN, "(")
	case ')':
		return l.make(token.RPAREN, ")")
	case '{':
		return l.make(token.LBRACE, "{")
	case '}':
		return l.make(token.RBRACE, "}")
	case '[':
		return l.make(token.LBRACKET, "[")
	case ']':
		return l.make(token.RBRACKET, "]")
	case '@':
		return l.make(token.AT, "@")
	}
	l.errorf(l.begin, "unexpected character %q", r)
	return l.make(token.ILLEGAL, string(r))
}

func (l *Lexer) make(k token.Kind, text string) token.Token {
	return token.Token{Kind: k, Text: text, Pos: l.begin}
}

func (l *Lexer) scanIdent() token.Token {
	// A datetime literal looks like d<month>-<day>-<year>-<h>:<m>:<s>.
	// Disambiguate from identifiers: a datetime is a leading 'd' followed
	// immediately by a digit.
	if l.peek() == 'd' && unicode.IsDigit(l.peek2()) {
		l.advance() // 'd'
		return l.scanDateTime()
	}
	var sb strings.Builder
	for isIdentCont(l.peek()) {
		sb.WriteRune(l.advance())
	}
	text := sb.String()
	if text == "_" {
		return l.make(token.UNDER, "_")
	}
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Text: text, Pos: l.begin}
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: l.begin}
}

// scanDateTime scans the remainder of d<month>-<day>-<year>-<hour>:<minute>:<second>.
// The leading 'd' has already been consumed.
func (l *Lexer) scanDateTime() token.Token {
	var sb strings.Builder
	sb.WriteByte('d')
	for {
		r := l.peek()
		if unicode.IsDigit(r) || r == '-' || r == ':' {
			sb.WriteRune(l.advance())
			continue
		}
		break
	}
	text := sb.String()
	if _, err := ParseDateTime(text); err != nil {
		l.errorf(l.begin, "invalid datetime literal %q: %v", text, err)
		return token.Token{Kind: token.ILLEGAL, Text: text, Pos: l.begin}
	}
	return token.Token{Kind: token.DATETIME, Text: text, Pos: l.begin}
}

func (l *Lexer) scanNumber() token.Token {
	var sb strings.Builder
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		sb.WriteRune(l.advance()) // '.'
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token.Token{Kind: token.FLOAT, Text: sb.String(), Pos: l.begin}
	}
	return token.Token{Kind: token.INT, Text: sb.String(), Pos: l.begin}
}

func (l *Lexer) scanString() token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		r := l.peek()
		switch r {
		case 0, '\n':
			l.errorf(l.begin, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Text: sb.String(), Pos: l.begin}
		case '"':
			l.advance()
			return token.Token{Kind: token.STRING, Text: sb.String(), Pos: l.begin}
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				l.errorf(l.begin, "invalid escape sequence \\%c", esc)
			}
		default:
			sb.WriteRune(l.advance())
		}
	}
}
