package equivcheck

import (
	"fmt"
	"sort"

	"scooter/internal/ast"
	"scooter/internal/schema"
	"scooter/internal/store"
)

// universeSet enumerates every document universe over the source schema up
// to the bound, after the relevance reductions:
//
//   - Relevant models are those a side mutates (AddField / RemoveField /
//     DeleteModel targets) or an initialiser reads via Find/ById. All
//     other collections are spectators — both sides copy them untouched —
//     so they are seeded empty. DeleteModel targets count as mutated even
//     though the final schemas agree: delete-then-recreate versus no-op
//     yields equal schemas but an emptied collection.
//   - Relevant fields are those some initialiser of either side reads.
//     Irrelevant fields take a single canonical default: no initialiser
//     observes them, and both sides carry them through identically.
//   - Universes are enumerated up to document renaming: documents of a
//     model form a multiset of valuations, so valuation indices are
//     non-decreasing per model, and ids come from fixed per-model ranges.
type universeSet struct {
	models []modelUniverse
	// total is the full product; the caller compares it to MaxUniverses.
	total int64
	// maxID is the largest document id any seeding assigns.
	maxID store.ID
}

// modelUniverse is the per-model slice of the enumeration.
type modelUniverse struct {
	name   string
	fields []fieldDomain
	// baseID starts the model's fixed id range: docs get baseID+1, ...
	baseID store.ID
	// counts holds, per document count 0..bound, the list of non-decreasing
	// valuation-index sequences of that length.
	counts [][][]int
	// nvals is the size of the valuation space (product of field domains).
	nvals int64
}

// fieldDomain is the set of values a relevant field ranges over (a single
// canonical default for irrelevant fields).
type fieldDomain struct {
	name   string
	values []store.Value
}

// seededUniverse is one point of the enumeration: a choice of valuation
// sequence per relevant model.
type seededUniverse struct {
	set *universeSet
	// seq[i] is the chosen valuation-index sequence for models[i].
	seq [][]int
}

// buildUniverses computes the relevance reductions and value domains.
func buildUniverses(before *schema.Schema, a, b Side, bound int) (*universeSet, error) {
	relevantModels := map[string]bool{}
	markModel := func(name string) {
		if before.Model(name) != nil {
			relevantModels[name] = true
		}
	}
	for _, s := range []*Side{&a, &b} {
		for _, m := range s.Mutated {
			markModel(m)
		}
		for _, ir := range s.Inits {
			markModel(ir.Model)
			for m := range ast.ReferencedModels(ir.Init.Body) {
				markModel(m)
			}
		}
	}

	relevantFields := map[ast.FieldRef]bool{}
	for _, s := range []*Side{&a, &b} {
		for _, ir := range s.Inits {
			for ref := range ast.ReferencedFields(ir.Init.Body) {
				if m := before.Model(ref.Model); m != nil && m.Field(ref.Field) != nil {
					relevantFields[ref] = true
				}
			}
		}
	}

	intLits, strLits, dtLits := mineLiterals(a, b)

	names := make([]string, 0, len(relevantModels))
	for name := range relevantModels {
		names = append(names, name)
	}
	sort.Strings(names)

	set := &universeSet{total: 1}
	for i, name := range names {
		m := before.Model(name)
		mu := modelUniverse{name: name, baseID: store.ID(i * bound)}
		for _, f := range m.Fields {
			dom := fieldDomain{name: f.Name}
			if relevantFields[ast.FieldRef{Model: name, Field: f.Name}] {
				dom.values = domainValues(f.Type, relevantModels, names, bound, intLits, strLits, dtLits)
			} else {
				dom.values = []store.Value{defaultValue(f.Type, relevantModels, names, bound)}
			}
			mu.fields = append(mu.fields, dom)
		}
		mu.nvals = 1
		for _, d := range mu.fields {
			mu.nvals *= int64(len(d.values))
			if mu.nvals > 1<<32 {
				return nil, fmt.Errorf("valuation space for %s overflows", name)
			}
		}
		mu.counts = make([][][]int, bound+1)
		for c := 0; c <= bound; c++ {
			mu.counts[c] = multisets(int(mu.nvals), c)
		}
		perModel := int64(0)
		for c := 0; c <= bound; c++ {
			perModel += int64(len(mu.counts[c]))
		}
		set.total *= perModel
		if set.total > 1<<40 {
			set.total = 1 << 40 // saturate; already far past any sane cap
		}
		if last := mu.baseID + store.ID(bound); last > set.maxID {
			set.maxID = last
		}
		set.models = append(set.models, mu)
	}
	return set, nil
}

// multisets returns every non-decreasing sequence of length c over indices
// 0..n-1 (combinations with repetition): the canonical representatives of
// document multisets up to renaming.
func multisets(n, c int) [][]int {
	if c == 0 {
		return [][]int{{}}
	}
	if n == 0 {
		return nil
	}
	var out [][]int
	seq := make([]int, c)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == c {
			out = append(out, append([]int(nil), seq...))
			return
		}
		for v := min; v < n; v++ {
			seq[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, 0)
	return out
}

// mineLiterals collects the integer, string, and datetime literals
// appearing in either side's initialisers: boundary values the initialiser
// branches on, so the domains should straddle them.
func mineLiterals(a, b Side) (ints []int64, strs []string, dts []int64) {
	seenI, seenS, seenD := map[int64]bool{}, map[string]bool{}, map[int64]bool{}
	for _, s := range []*Side{&a, &b} {
		for _, ir := range s.Inits {
			ast.Walk(ir.Init.Body, func(e ast.Expr) bool {
				switch lit := e.(type) {
				case *ast.IntLit:
					seenI[lit.Value] = true
				case *ast.StringLit:
					seenS[lit.Value] = true
				case *ast.DateTimeLit:
					seenD[lit.Unix] = true
				}
				return true
			})
		}
	}
	for v := range seenI {
		ints = append(ints, v)
	}
	for v := range seenS {
		strs = append(strs, v)
	}
	for v := range seenD {
		dts = append(dts, v)
	}
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	sort.Strings(strs)
	sort.Slice(dts, func(i, j int) bool { return dts[i] < dts[j] })
	if len(ints) > 2 {
		ints = ints[:2]
	}
	if len(strs) > 2 {
		strs = strs[:2]
	}
	if len(dts) > 2 {
		dts = dts[:2]
	}
	return ints, strs, dts
}

// firstID returns the first id of a relevant model's fixed range, or a
// dangling id for irrelevant targets (their collections are empty, so any
// reference is dangling; one canonical value suffices).
func firstID(target string, names []string, bound int) store.ID {
	for i, n := range names {
		if n == target {
			return store.ID(i*bound) + 1
		}
	}
	return store.ID(1 << 30)
}

// defaultValue is the single canonical value an irrelevant field takes.
func defaultValue(t ast.Type, relevant map[string]bool, names []string, bound int) store.Value {
	switch t.Kind {
	case ast.TBool:
		return false
	case ast.TI64, ast.TDateTime:
		return int64(0)
	case ast.TF64:
		return 0.0
	case ast.TString, ast.TBlob:
		return ""
	case ast.TId:
		return firstID(t.Model, names, bound)
	case ast.TOption:
		return store.None()
	case ast.TSet:
		return []store.Value{}
	default:
		return ""
	}
}

// domainValues is the varied domain of a relevant field: enough values to
// exercise every branch shape an initialiser can take at this bound, plus
// the literals it mentions.
func domainValues(t ast.Type, relevant map[string]bool, names []string, bound int, ints []int64, strs []string, dts []int64) []store.Value {
	uniq := func(vals []store.Value) []store.Value {
		var out []store.Value
		seen := map[string]bool{}
		for _, v := range vals {
			k := fmt.Sprintf("%T:%v", v, v)
			if !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
		return out
	}
	switch t.Kind {
	case ast.TBool:
		return []store.Value{false, true}
	case ast.TI64:
		vals := []store.Value{int64(0), int64(1)}
		for _, v := range ints {
			vals = append(vals, v, v+1)
		}
		return uniq(vals)
	case ast.TDateTime:
		vals := []store.Value{int64(0), int64(1)}
		for _, v := range dts {
			vals = append(vals, v, v+1)
		}
		return uniq(vals)
	case ast.TF64:
		return []store.Value{0.0, 1.0}
	case ast.TString:
		vals := []store.Value{"", "a"}
		for _, v := range strs {
			vals = append(vals, v)
		}
		return uniq(vals)
	case ast.TId:
		first := firstID(t.Model, names, bound)
		if relevant[t.Model] && bound >= 2 {
			return []store.Value{first, first + 1}
		}
		return []store.Value{first}
	case ast.TOption:
		return []store.Value{store.None(), store.Some(defaultValue(*t.Elem, relevant, names, bound))}
	case ast.TSet:
		return []store.Value{[]store.Value{}, []store.Value{defaultValue(*t.Elem, relevant, names, bound)}}
	case ast.TBlob:
		return []store.Value{""}
	default:
		return []store.Value{""}
	}
}

// each walks the full enumeration, calling fn on every seeded universe
// until fn reports done. Iteration order is deterministic (odometer over
// sorted models, counts ascending, valuation sequences lexicographic).
func (u *universeSet) each(fn func(seededUniverse) (bool, error)) (bool, error) {
	// flat[i] lists every (count, seq) choice for model i, in order.
	flat := make([][][]int, len(u.models))
	for i, mu := range u.models {
		for _, seqs := range mu.counts {
			flat[i] = append(flat[i], seqs...)
		}
	}
	pick := make([]int, len(u.models))
	for {
		seq := make([][]int, len(u.models))
		for i := range u.models {
			if len(flat[i]) == 0 {
				seq[i] = nil
				continue
			}
			seq[i] = flat[i][pick[i]]
		}
		done, err := fn(seededUniverse{set: u, seq: seq})
		if err != nil || done {
			return done, err
		}
		// Advance the odometer.
		i := len(pick) - 1
		for ; i >= 0; i-- {
			if len(flat[i]) == 0 {
				continue
			}
			pick[i]++
			if pick[i] < len(flat[i]) {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			return false, nil
		}
	}
}

// seed materialises the universe into a fresh store: every relevant model's
// documents at their fixed ids, next-id advanced past every range so ids
// allocated by either side's execution cannot collide with seeded ones.
func (u seededUniverse) seed() *store.DB {
	db := store.Open()
	for i, mu := range u.set.models {
		coll := db.Collection(mu.name)
		for j, vidx := range u.seq[i] {
			doc := store.Doc{}
			rem := int64(vidx)
			// Decode the valuation index in mixed radix over the field
			// domains (last field varies fastest).
			for k := len(mu.fields) - 1; k >= 0; k-- {
				d := mu.fields[k]
				n := int64(len(d.values))
				doc[d.name] = cloneValue(d.values[rem%n])
				rem /= n
			}
			id := mu.baseID + store.ID(j+1)
			if err := coll.InsertWithID(id, doc); err != nil {
				panic(fmt.Sprintf("equivcheck: seeding %s id %d: %v", mu.name, id, err))
			}
		}
	}
	db.AdvanceNextID(u.set.maxID)
	return db
}

// cloneValue copies mutable seed values (sets) so universes stay immutable
// across the two executions.
func cloneValue(v store.Value) store.Value {
	if s, ok := v.([]store.Value); ok {
		out := make([]store.Value, len(s))
		copy(out, s)
		return out
	}
	return v
}

// describe renders the universe compactly for counterexample labelling.
func (u seededUniverse) describe() string {
	total := 0
	for i := range u.set.models {
		total += len(u.seq[i])
	}
	return fmt.Sprintf("%d seeded document(s)", total)
}
