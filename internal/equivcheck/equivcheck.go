// Package equivcheck proves two migrations over the same source schema
// observationally equivalent up to a configurable bound — the Mediator /
// VeriEQL line of work applied to Scooter migrations, extending Sidecar
// from strictness-only proofs to bounded equivalence proofs (ROADMAP item
// 4). A check has two phases:
//
//  1. Schema/policy phase. The final schemas must be structurally equal
//     (statics, models, fields, types, principal flags), and every pair of
//     corresponding policies must be extensionally equal — proved by the
//     SMT-backed strictness checker in both directions. Extensional policy
//     equality over unconstrained stores is the right notion here: the
//     post-migration spec also governs documents written after the
//     migration, whose field values are not determined by any initialiser.
//
//  2. Data phase. Every document universe up to the bound is enumerated
//     over the source schema, both sides execute against identically
//     seeded stores, and the resulting stores are compared canonically
//     (collections and fields sorted, sets as sorted multisets). The first
//     diverging collection/field, together with the seeded universe that
//     witnesses it, becomes a concrete counterexample.
//
// Enumeration stays tractable through relevance reductions (documented in
// DESIGN.md): models neither mutated by a side nor read by an initialiser
// are seeded empty, only fields an initialiser reads get varied value
// domains, universes are enumerated up to document renaming, and the total
// is capped — exceeding the cap yields Inconclusive, never a silent skip.
//
// Verdicts flow through the same fingerprint LRU (verify.Cache) and
// persistent store (verify.VerdictDB) as strictness proofs, keyed by a
// canonical fingerprint of the source spec, both sides, and the bounds, so
// a warm replay reproduces cold output byte for byte.
package equivcheck

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"scooter/internal/ast"
	"scooter/internal/obs"
	"scooter/internal/schema"
	"scooter/internal/smt/term"
	"scooter/internal/specfmt"
	"scooter/internal/store"
	"scooter/internal/verify"
)

// Defaults for Options.
const (
	DefaultBound        = 2
	DefaultMaxUniverses = 20000
)

// InitRef is one AddField initialiser of a side, used by the relevance
// analysis to decide which models and fields the data phase must vary.
// The initialiser must be type-checked (migrate.Verify does this) so field
// references resolve.
type InitRef struct {
	Model string
	Init  *ast.FuncLit
}

// Side is one of the two migrations under comparison: a script, or an
// internally derived execution plan (e.g. the online backfill plan). The
// engine never parses or verifies a side itself — the caller supplies the
// final schema, the initialisers, the mutated model set, and an executor.
type Side struct {
	// Name labels the side in counterexamples (e.g. the script filename).
	Name string
	// ID is the side's canonical identity for fingerprinting: two sides
	// with equal IDs are assumed to be the same migration. The migrate
	// entry points use the canonical command rendering (plus a plan tag).
	ID string
	// After is the side's post-migration schema.
	After *schema.Schema
	// Inits lists the side's AddField initialisers for relevance analysis.
	Inits []InitRef
	// Mutated names the models whose collections the side's execution can
	// mutate (AddField, RemoveField, and DeleteModel targets).
	Mutated []string
	// Exec runs the side's migration against a seeded store.
	Exec func(db *store.DB) error
}

// Options configures a check.
type Options struct {
	// Bound caps documents per relevant model (DefaultBound when <= 0). An
	// Equivalent verdict holds for every universe up to this bound.
	Bound int
	// MaxUniverses caps the number of universes the data phase replays
	// (DefaultMaxUniverses when <= 0). A universe space larger than the cap
	// yields Inconclusive.
	MaxUniverses int
	// SolverRounds is the per-policy-proof SMT budget
	// (verify.DefaultSolverRounds when <= 0).
	SolverRounds int
	// Kind tags the verdict's cache key ("equiv" when empty; the online
	// plan self-check uses "equiv-online") so differently derived checks
	// never share an entry.
	Kind string
	// Cache, when set, memoizes equivalence verdicts alongside strictness
	// verdicts; VerdictDB persists them. The inner policy proofs use both
	// as well, under their own strictness keys.
	Cache     *verify.Cache
	VerdictDB *verify.VerdictDB
	// Metrics, when set, observes each check in the workspace registry.
	Metrics *obs.EquivMetrics
}

// Verdict classifies an equivalence check.
type Verdict int

// Verdicts. Inconclusive arises when a policy proof exhausts its solver
// budget or the universe space exceeds MaxUniverses.
const (
	Equivalent Verdict = iota
	NotEquivalent
	Inconclusive
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case NotEquivalent:
		return "not-equivalent"
	default:
		return "inconclusive"
	}
}

// Report is the outcome of a check.
type Report struct {
	Verdict Verdict
	// Bound is the per-model document bound the verdict holds up to.
	Bound int
	// Universes counts document universes the data phase replayed.
	Universes int
	// PolicyProofs counts SMT strictness proofs discharged in phase 1.
	PolicyProofs int
	// CacheHit reports that the verdict was answered from the fingerprint
	// cache or the verdict store without re-checking.
	CacheHit bool
	// Incomplete notes that a policy proof used bounded instantiation.
	Incomplete bool
	// Counterexample is set on NotEquivalent: the diverging location and
	// the seeded universe (or policy witness database) exhibiting it.
	Counterexample *verify.Counterexample
	// Why explains an Inconclusive verdict.
	Why string
}

// Format renders the report deterministically. Cache status is deliberately
// excluded: a warm replay must reproduce the cold rendering byte for byte.
func (r *Report) Format() string {
	var sb strings.Builder
	switch r.Verdict {
	case Equivalent:
		fmt.Fprintf(&sb, "EQUIVALENT up to bound %d (%d universes replayed, %d policy proofs)\n",
			r.Bound, r.Universes, r.PolicyProofs)
		if r.Incomplete {
			sb.WriteString("note: a policy proof used bounded instantiation; equality holds up to the instantiation bound\n")
		}
	case NotEquivalent:
		fmt.Fprintf(&sb, "NOT EQUIVALENT (bound %d)\n", r.Bound)
		if r.Counterexample != nil {
			sb.WriteString(r.Counterexample.String())
		}
	default:
		fmt.Fprintf(&sb, "INCONCLUSIVE (bound %d): %s\n", r.Bound, r.Why)
	}
	return sb.String()
}

// Check proves sides a and b equivalent over the source schema before, up
// to the configured bound. It returns an error only on internal failures
// (e.g. a side's executor failing for reasons other than rejecting a
// universe); verdicts, counterexamples, and budget exhaustion are reported
// in the Report.
func Check(before *schema.Schema, a, b Side, opts Options) (*Report, error) {
	start := time.Now()
	bound := opts.Bound
	if bound <= 0 {
		bound = DefaultBound
	}
	maxU := opts.MaxUniverses
	if maxU <= 0 {
		maxU = DefaultMaxUniverses
	}
	rounds := opts.SolverRounds
	if rounds <= 0 {
		rounds = verify.DefaultSolverRounds
	}
	kind := opts.Kind
	if kind == "" {
		kind = "equiv"
	}

	key := cacheKey(before, a, b, bound, maxU, rounds, kind)
	if opts.Cache != nil {
		if res, ok := opts.Cache.Lookup(key); ok {
			// Re-put so a store attached after the memory cache warmed up
			// still captures the verdict (Put dedups).
			opts.VerdictDB.Put(key, res)
			rep := reportFromResult(&res, bound)
			observe(opts.Metrics, rep, start)
			return rep, nil
		}
	}
	if res, ok := opts.VerdictDB.Lookup(key); ok {
		if opts.Cache != nil {
			opts.Cache.Insert(key, res)
		}
		rep := reportFromResult(&res, bound)
		observe(opts.Metrics, rep, start)
		return rep, nil
	}

	rep, err := check(before, a, b, bound, maxU, rounds, opts)
	if err != nil {
		return nil, err
	}
	rep.Bound = bound
	if rep.Verdict != Inconclusive {
		// Inconclusive is never cached — which budget ran out depends on
		// the run, matching the strictness-verdict cache rule.
		res := resultFromReport(rep)
		if opts.Cache != nil {
			opts.Cache.Insert(key, res)
		}
		opts.VerdictDB.Put(key, res)
	}
	observe(opts.Metrics, rep, start)
	return rep, nil
}

func observe(m *obs.EquivMetrics, rep *Report, start time.Time) {
	m.RecordCheck(rep.Verdict.String(), time.Since(start).Seconds(), rep.Universes)
}

// check runs both phases cold (no verdict-cache consultation for the
// overall answer; the inner policy proofs still use the caches).
func check(before *schema.Schema, a, b Side, bound, maxU, rounds int, opts Options) (*Report, error) {
	rep := &Report{Verdict: Equivalent}

	// Phase 1: structural schema equality, then policy equivalence.
	if ce := diffShapes(a, b); ce != nil {
		rep.Verdict = NotEquivalent
		rep.Counterexample = ce
		return rep, nil
	}
	done, err := checkPolicies(a, b, rounds, opts, rep)
	if err != nil || done {
		return rep, err
	}

	// Phase 2: bounded differential replay.
	uset, err := buildUniverses(before, a, b, bound)
	if err != nil {
		return nil, err
	}
	if uset.total > int64(maxU) {
		rep.Verdict = Inconclusive
		rep.Why = fmt.Sprintf("universe space (%d) exceeds max-universes (%d); raise -max-universes or lower -bound", uset.total, maxU)
		return rep, nil
	}
	idx := 0
	_, err = uset.each(func(u seededUniverse) (bool, error) {
		rep.Universes++
		dba, dbb := u.seed(), u.seed()
		errA, errB := a.Exec(dba), b.Exec(dbb)
		if errA != nil && errB != nil {
			// Both sides reject this universe: vacuously equal outcomes.
			idx++
			return false, nil
		}
		if (errA != nil) != (errB != nil) {
			rep.Verdict = NotEquivalent
			rep.Counterexample = execCounterexample(a, b, u, errA, errB, bound, idx)
			return true, nil
		}
		if div := diffStores(dba, dbb); div != nil {
			rep.Verdict = NotEquivalent
			rep.Counterexample = dataCounterexample(a, b, u, div, bound, idx)
			return true, nil
		}
		idx++
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// checkPolicies proves every corresponding policy pair extensionally equal
// via the strictness checker in both directions. Returns done=true when the
// verdict is decided (NotEquivalent or Inconclusive).
func checkPolicies(a, b Side, rounds int, opts Options, rep *Report) (bool, error) {
	// Both schemas are structurally equal at this point; a's supplies the
	// model/principal context for lowering (policies are compared
	// explicitly, so b's policy text never needs to live in the schema).
	checker := verify.New(a.After, nil)
	checker.SolverRounds = rounds
	checker.Cache = opts.Cache
	checker.Persist = opts.VerdictDB

	type slot struct {
		model, loc string
		pa, pb     ast.Policy
	}
	var slots []slot
	for _, name := range a.After.SortedModelNames() {
		ma, mb := a.After.Model(name), b.After.Model(name)
		slots = append(slots,
			slot{name, name + " (create)", ma.Create, mb.Create},
			slot{name, name + " (delete)", ma.Delete, mb.Delete})
		for _, fa := range ma.Fields {
			fb := mb.Field(fa.Name)
			slots = append(slots,
				slot{name, fmt.Sprintf("%s.%s (read)", name, fa.Name), fa.Read, fb.Read},
				slot{name, fmt.Sprintf("%s.%s (write)", name, fa.Name), fa.Write, fb.Write})
		}
	}
	for _, s := range slots {
		if s.pa.String() == s.pb.String() {
			continue
		}
		for _, dir := range []struct {
			old, new ast.Policy
			admitted string // side whose policy admits the witness principal
		}{{s.pa, s.pb, b.Name}, {s.pb, s.pa, a.Name}} {
			res, err := checker.CheckStrictness(s.model, dir.old, dir.new)
			if err != nil {
				return false, fmt.Errorf("policy proof for %s: %w", s.loc, err)
			}
			rep.PolicyProofs++
			rep.Incomplete = rep.Incomplete || res.Incomplete
			switch res.Verdict {
			case verify.Violation:
				rep.Verdict = NotEquivalent
				rep.Counterexample = policyCounterexample(s.loc, dir.admitted, res.Counterexample)
				return true, nil
			case verify.Inconclusive:
				rep.Verdict = Inconclusive
				rep.Why = fmt.Sprintf("policy proof for %s is inconclusive", s.loc)
				if res.Why != nil {
					rep.Why += ": " + res.Why.Error()
				}
				return true, nil
			}
		}
	}
	return false, nil
}

// diffShapes compares the two final schemas structurally (everything but
// policy bodies). A mismatch is a definitive inequivalence: the migrations
// do not even agree on the resulting specification's shape.
func diffShapes(a, b Side) *verify.Counterexample {
	mismatch := func(where, va, vb string) *verify.Counterexample {
		return &verify.Counterexample{
			Principal: "final schemas differ at " + where,
			Target: verify.Record{
				Model: "$schema",
				ID:    where,
				Fields: []verify.FieldValue{
					{Name: a.Name, Value: va},
					{Name: b.Name, Value: vb},
				},
			},
		}
	}
	sa, sb := append([]string(nil), a.After.Statics...), append([]string(nil), b.After.Statics...)
	sort.Strings(sa)
	sort.Strings(sb)
	if strings.Join(sa, ",") != strings.Join(sb, ",") {
		return mismatch("static principals", strings.Join(sa, ", "), strings.Join(sb, ", "))
	}
	na, nb := a.After.SortedModelNames(), b.After.SortedModelNames()
	if strings.Join(na, ",") != strings.Join(nb, ",") {
		return mismatch("models", strings.Join(na, ", "), strings.Join(nb, ", "))
	}
	for _, name := range na {
		ma, mb := a.After.Model(name), b.After.Model(name)
		if ma.Principal != mb.Principal {
			return mismatch(name+" @principal", fmt.Sprintf("%t", ma.Principal), fmt.Sprintf("%t", mb.Principal))
		}
		fa, fb := append([]string(nil), ma.FieldNames()...), append([]string(nil), mb.FieldNames()...)
		sort.Strings(fa)
		sort.Strings(fb)
		if strings.Join(fa, ",") != strings.Join(fb, ",") {
			return mismatch(name+" fields", strings.Join(fa, ", "), strings.Join(fb, ", "))
		}
		for _, fn := range fa {
			ta, tb := ma.Field(fn).Type, mb.Field(fn).Type
			if !ta.Equal(tb) {
				return mismatch(name+"."+fn+" type", ta.String(), tb.String())
			}
		}
	}
	return nil
}

// policyCounterexample wraps an SMT strictness witness with its location:
// the witness principal can read the target under one side's policy but
// not the other's.
func policyCounterexample(loc, admittedBy string, inner *verify.Counterexample) *verify.Counterexample {
	ce := &verify.Counterexample{
		Principal: fmt.Sprintf("policies disagree at %s: principal admitted only by %s", loc, admittedBy),
	}
	if inner != nil {
		ce.Principal = fmt.Sprintf("policies disagree at %s: %s admitted only by %s", loc, inner.Principal, admittedBy)
		ce.PrincipalRef = inner.PrincipalRef
		ce.StaticPrincipal = inner.StaticPrincipal
		ce.Target = inner.Target
		ce.Others = inner.Others
	}
	return ce
}

// cacheKey fingerprints a check: the canonical source spec, both sides'
// identities, and every parameter a verdict depends on. The key shares
// verify.CacheKey so equivalence verdicts live in the same LRU and
// VerdictDB as strictness verdicts, distinguished by Kind.
func cacheKey(before *schema.Schema, a, b Side, bound, maxU, rounds int, kind string) verify.CacheKey {
	payload := strings.Join([]string{
		"equivcheck-v1",
		canonicalSpec(before),
		a.ID,
		b.ID,
		strconv.Itoa(bound),
		strconv.Itoa(maxU),
	}, "\x00")
	return verify.CacheKey{
		Fp:     fingerprint(payload),
		Kind:   kind,
		Rounds: rounds,
	}
}

func fingerprint(payload string) term.Fp {
	var fp term.Fp
	for i, seed := range []string{"equiv-lo\x00", "equiv-hi\x00"} {
		h := fnv.New64a()
		h.Write([]byte(seed))
		h.Write([]byte(payload))
		fp[i] = h.Sum64()
	}
	return fp
}

// canonicalSpec renders a schema with models and statics in sorted order,
// so fingerprints do not depend on declaration order.
func canonicalSpec(s *schema.Schema) string {
	c := s.Clone()
	sort.Strings(c.Statics)
	sort.Slice(c.Models, func(i, j int) bool { return c.Models[i].Name < c.Models[j].Name })
	return specfmt.Format(c)
}

// resultFromReport maps a definitive report onto verify.Result so it can
// ride the strictness caches. The replay statistics are packed into the
// (otherwise unused) principal-kind strings — both persist through
// VerdictDB, so a warm replay reproduces cold output byte for byte.
func resultFromReport(rep *Report) verify.Result {
	res := verify.Result{Incomplete: rep.Incomplete, Counterexample: rep.Counterexample}
	if rep.Verdict == NotEquivalent {
		res.Verdict = verify.Violation
	}
	res.Kind.Model = "u" + strconv.Itoa(rep.Universes)
	res.Kind.Static = "p" + strconv.Itoa(rep.PolicyProofs)
	return res
}

func reportFromResult(res *verify.Result, bound int) *Report {
	rep := &Report{
		Verdict:        Equivalent,
		Bound:          bound,
		CacheHit:       true,
		Incomplete:     res.Incomplete,
		Counterexample: res.Counterexample,
	}
	if res.Verdict == verify.Violation {
		rep.Verdict = NotEquivalent
	}
	rep.Universes = unpackStat(res.Kind.Model, "u")
	rep.PolicyProofs = unpackStat(res.Kind.Static, "p")
	return rep
}

func unpackStat(s, prefix string) int {
	if !strings.HasPrefix(s, prefix) {
		return 0
	}
	n, err := strconv.Atoi(s[len(prefix):])
	if err != nil {
		return 0
	}
	return n
}
