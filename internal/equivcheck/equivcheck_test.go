package equivcheck

import (
	"testing"

	"scooter/internal/store"
)

func TestMultisets(t *testing.T) {
	// C(n+c-1, c) sequences: the canonical representatives of document
	// multisets up to renaming.
	cases := []struct{ n, c, want int }{
		{1, 0, 1}, {1, 2, 1}, {2, 2, 3}, {3, 2, 6}, {4, 3, 20}, {0, 1, 0},
	}
	for _, tc := range cases {
		got := multisets(tc.n, tc.c)
		if len(got) != tc.want {
			t.Fatalf("multisets(%d,%d): %d sequences, want %d", tc.n, tc.c, len(got), tc.want)
		}
		for _, seq := range got {
			for i := 1; i < len(seq); i++ {
				if seq[i] < seq[i-1] {
					t.Fatalf("multisets(%d,%d): %v is not non-decreasing", tc.n, tc.c, seq)
				}
			}
		}
	}
}

func TestRenderValueCanonical(t *testing.T) {
	// Sets render as sorted multisets: element order is an execution
	// artifact, not an observable difference.
	a := []store.Value{store.ID(2), store.ID(1)}
	b := []store.Value{store.ID(1), store.ID(2)}
	if renderValue(a) != renderValue(b) {
		t.Fatalf("set order must not matter: %s vs %s", renderValue(a), renderValue(b))
	}
	if got := renderValue(store.Some(int64(3))); got != "Some(3)" {
		t.Fatalf("optional rendering: %s", got)
	}
	if got := renderValue(store.None()); got != "None" {
		t.Fatalf("none rendering: %s", got)
	}
}

func TestDiffStoresSkipsEmptyCollections(t *testing.T) {
	// CreateModel materialises an empty collection eagerly; a store that
	// merely has the (empty) collection must equal one that never touched
	// it — no query distinguishes them.
	a, b := store.Open(), store.Open()
	a.Collection("Ghost")
	if div := diffStores(a, b); div != nil {
		t.Fatalf("empty collection must not diverge: %+v", div)
	}
	if err := a.Collection("User").InsertWithID(1, store.Doc{"name": "x"}); err != nil {
		t.Fatal(err)
	}
	div := diffStores(a, b)
	if div == nil || div.collection != "User" {
		t.Fatalf("expected User count divergence, got %+v", div)
	}
}

func TestDiffStoresFirstDivergingField(t *testing.T) {
	a, b := store.Open(), store.Open()
	doc := store.Doc{"alpha": int64(1), "beta": "same"}
	if err := a.Collection("M").InsertWithID(1, doc); err != nil {
		t.Fatal(err)
	}
	if err := b.Collection("M").InsertWithID(1, store.Doc{"alpha": int64(2), "beta": "same"}); err != nil {
		t.Fatal(err)
	}
	div := diffStores(a, b)
	if div == nil || div.collection != "M" || div.field != "alpha" || div.va != "1" || div.vb != "2" {
		t.Fatalf("expected M.alpha 1 vs 2, got %+v", div)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	// The two 64-bit halves are independently seeded, and any payload
	// change moves the fingerprint.
	fp := fingerprint("payload")
	if fp[0] == fp[1] {
		t.Fatal("fingerprint halves must differ")
	}
	if fingerprint("payload") != fp {
		t.Fatal("fingerprint must be deterministic")
	}
	if fingerprint("payloae") == fp {
		t.Fatal("fingerprint must be payload-sensitive")
	}
}

func TestUnpackStat(t *testing.T) {
	if got := unpackStat("u109", "u"); got != 109 {
		t.Fatalf("unpackStat(u109) = %d", got)
	}
	if got := unpackStat("User", "u"); got != 0 {
		t.Fatalf("legacy strictness kind must unpack to 0, got %d", got)
	}
	if got := unpackStat("", "p"); got != 0 {
		t.Fatalf("empty kind must unpack to 0, got %d", got)
	}
}
