package equivcheck

import (
	"fmt"
	"sort"
	"strings"

	"scooter/internal/store"
	"scooter/internal/verify"
)

// divergence is the first point where two stores disagree, in canonical
// order (collections sorted, documents by id, fields sorted).
type divergence struct {
	collection string
	docID      string // "" for collection-level divergences (presence/count)
	field      string // "" for document-level divergences (presence)
	va, vb     string // rendered values ("<absent>" when missing)
}

// diffStores compares two stores canonically and returns the first
// divergence, or nil when equal. Empty collections are skipped: CreateModel
// materialises an empty collection eagerly, so "materialised empty" versus
// "never touched" is an implementation artifact, not an observable
// difference — no query distinguishes them.
func diffStores(a, b *store.DB) *divergence {
	names := map[string]bool{}
	for _, n := range nonEmptyCollections(a) {
		names[n] = true
	}
	for _, n := range nonEmptyCollections(b) {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		docsA, docsB := collectionDocs(a, name), collectionDocs(b, name)
		if len(docsA) != len(docsB) {
			return &divergence{
				collection: name,
				va:         fmt.Sprintf("%d document(s)", len(docsA)),
				vb:         fmt.Sprintf("%d document(s)", len(docsB)),
			}
		}
		// Both sides seed identical ids and advance the id counter past the
		// seeded ranges identically, so equal stores pair up by id.
		for i := range docsA {
			da, db := docsA[i], docsB[i]
			if da.ID() != db.ID() {
				return &divergence{
					collection: name,
					docID:      da.ID().String(),
					va:         "document " + da.ID().String(),
					vb:         "document " + db.ID().String(),
				}
			}
			if d := diffDocs(name, da, db); d != nil {
				return d
			}
		}
	}
	return nil
}

func nonEmptyCollections(db *store.DB) []string {
	var out []string
	for _, name := range db.CollectionNames() {
		if c, ok := db.Lookup(name); ok && c.Len() > 0 {
			out = append(out, name)
		}
	}
	return out
}

func collectionDocs(db *store.DB, name string) []store.Doc {
	c, ok := db.Lookup(name)
	if !ok {
		return nil
	}
	return c.Find() // id-sorted clones
}

func diffDocs(collection string, da, db store.Doc) *divergence {
	fields := map[string]bool{}
	for k := range da {
		fields[k] = true
	}
	for k := range db {
		fields[k] = true
	}
	sorted := make([]string, 0, len(fields))
	for k := range fields {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, f := range sorted {
		va, okA := da[f]
		vb, okB := db[f]
		ra, rb := "<absent>", "<absent>"
		if okA {
			ra = renderValue(va)
		}
		if okB {
			rb = renderValue(vb)
		}
		if ra != rb {
			return &divergence{collection: collection, docID: da.ID().String(), field: f, va: ra, vb: rb}
		}
	}
	return nil
}

// renderValue renders a store value canonically: sets as sorted multisets,
// so element order (an implementation artifact) never registers as a
// divergence.
func renderValue(v store.Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return fmt.Sprintf("%t", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case string:
		return fmt.Sprintf("%q", x)
	case store.ID:
		return x.String()
	case store.Optional:
		if !x.Present {
			return "None"
		}
		return "Some(" + renderValue(x.Value) + ")"
	case []store.Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = renderValue(e)
		}
		sort.Strings(parts)
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// universeRecords renders the seeded universe as verify.Records for the
// counterexample's OTHER RECORDS section, so the report shows the exact
// store both sides started from.
func universeRecords(u seededUniverse) []verify.Record {
	var out []verify.Record
	for i, mu := range u.set.models {
		for j, vidx := range u.seq[i] {
			rec := verify.Record{
				Model: mu.name,
				ID:    (mu.baseID + store.ID(j+1)).String(),
			}
			rem := int64(vidx)
			vals := make([]string, len(mu.fields))
			for k := len(mu.fields) - 1; k >= 0; k-- {
				d := mu.fields[k]
				n := int64(len(d.values))
				vals[k] = renderValue(d.values[rem%n])
				rem /= n
			}
			for k, d := range mu.fields {
				rec.Fields = append(rec.Fields, verify.FieldValue{Name: d.name, Value: vals[k]})
			}
			out = append(out, rec)
		}
	}
	return out
}

// dataCounterexample packages a data-phase divergence: the diverging
// location under Target, the seeded universe under Others.
func dataCounterexample(a, b Side, u seededUniverse, div *divergence, bound, idx int) *verify.Counterexample {
	loc := div.collection
	if div.docID != "" {
		loc += " " + div.docID
	}
	if div.field != "" {
		loc += "." + div.field
	}
	ce := &verify.Counterexample{
		Principal: fmt.Sprintf("universe #%d (%s, bound %d) diverges at %s", idx, u.describe(), bound, loc),
		Target: verify.Record{
			Model: div.collection,
			ID:    div.docID,
			Fields: []verify.FieldValue{
				{Name: a.Name, Value: div.va},
				{Name: b.Name, Value: div.vb},
			},
		},
		Others: universeRecords(u),
	}
	if div.field != "" {
		ce.Target.Fields = []verify.FieldValue{
			{Name: div.field, Value: fmt.Sprintf("%s: %s != %s: %s", a.Name, div.va, b.Name, div.vb)},
		}
	}
	return ce
}

// execCounterexample packages an execution divergence: exactly one side
// rejected the universe.
func execCounterexample(a, b Side, u seededUniverse, errA, errB error, bound, idx int) *verify.Counterexample {
	render := func(err error) string {
		if err == nil {
			return "ok"
		}
		return "error: " + err.Error()
	}
	return &verify.Counterexample{
		Principal: fmt.Sprintf("universe #%d (%s, bound %d) diverges at $error", idx, u.describe(), bound),
		Target: verify.Record{
			Model: "$error",
			Fields: []verify.FieldValue{
				{Name: a.Name, Value: render(errA)},
				{Name: b.Name, Value: render(errB)},
			},
		},
		Others: universeRecords(u),
	}
}
