package gen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	scparser "scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/typer"
)

const spec = `
@static-principal
Unauthenticated

@principal
User {
  create: _ -> [Unauthenticated],
  delete: none,
  name: String { read: public, write: u -> [u] },
  age: I64 { read: public, write: u -> [u] },
  height: F64 { read: public, write: u -> [u] },
  joined: DateTime { read: public, write: u -> [u] },
  isAdmin: Bool { read: public, write: none },
  bestFriend: Id(User) { read: public, write: u -> [u] },
  followers: Set(Id(User)) { read: public, write: u -> [u] },
  nickname: Option(String) { read: public, write: u -> [u] }}

Peep {
  create: p -> [p.author],
  delete: p -> [p.author],
  author: Id(User) { read: public, write: none },
  body: String { read: public, write: p -> [p.author] }}
`

func genSource(t *testing.T) string {
	t.Helper()
	f, err := scparser.ParsePolicyFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.FromPolicyFile(f)
	if err := typer.New(s).CheckSchema(); err != nil {
		t.Fatal(err)
	}
	src, err := Generate(s, "chitterorm")
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestGeneratedSourceParses(t *testing.T) {
	src := genSource(t)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
}

func TestGeneratedDeclarations(t *testing.T) {
	src := genSource(t)
	for _, want := range []string{
		"type User struct",
		"type UserData struct",
		"type UserPatch struct",
		"type UserHandle struct",
		"func Users(pr *scooter.Princ) UserHandle",
		"func (h UserHandle) ByID(id scooter.ID)",
		"func (h UserHandle) Find(filters ...scooter.Filter)",
		"func (h UserHandle) Insert(data UserData)",
		"func (h UserHandle) Update(id scooter.ID, patch UserPatch)",
		"func (h UserHandle) Delete(id scooter.ID)",
		"type Peep struct",
		"func Unauthenticated() scooter.Principal",
		"Followers *[]scooter.ID",
		"Nickname *scooter.Opt[string]",
		"BestFriend *scooter.ID",
		"Joined *int64",
		"Height *float64",
	} {
		if !strings.Contains(collapseSpaces(src), collapseSpaces(want)) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

// collapseSpaces normalises gofmt's column alignment for matching.
func collapseSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func TestGoNames(t *testing.T) {
	cases := map[string]string{
		"name":        "Name",
		"isAdmin":     "IsAdmin",
		"admin_level": "AdminLevel",
		"x":           "X",
	}
	for in, want := range cases {
		if got := goName(in); got != want {
			t.Errorf("goName(%q) = %q, want %q", in, got, want)
		}
	}
}
