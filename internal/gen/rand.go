package gen

// Random well-typed specification generator, used by the specdiff
// round-trip property tests and the parser fuzz seed corpus. Schemas are
// drawn from small fixed name pools so that two independent draws overlap
// and their diff is non-trivial: shared models with divergent fields,
// models only one side has, statics coming and going.

import (
	"fmt"
	"math/rand"

	"scooter/internal/ast"
	"scooter/internal/schema"
	"scooter/internal/token"
	"scooter/internal/typer"
)

var (
	randStatics = []string{"Admin", "Root", "Batch"}
	randModels  = []string{"Alpha", "Beta", "Gamma", "Delta"}
	randFields  = []string{"fa", "fb", "fc", "fd", "fe"}
)

var randScalars = []ast.Type{
	ast.StringType, ast.I64Type, ast.F64Type,
	ast.BoolType, ast.DateTimeType, ast.BlobType,
}

// RandomSchema draws a random type-checked schema: 0–2 static principals,
// 1–3 models (the first one a principal half the time), each with 0–4
// fields over scalar, Option, Set, and Id types.
func RandomSchema(r *rand.Rand) *schema.Schema {
	s := schema.New()
	for _, st := range randStatics {
		if r.Intn(3) == 0 {
			mustDo(s.AddStatic(st))
		}
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		m := &schema.Model{Name: randModels[i], Principal: i == 0 && r.Intn(2) == 0}
		m.Create = randPolicy(r, s, m)
		m.Delete = randPolicy(r, s, m)
		nf := r.Intn(5)
		for j := 0; j < nf; j++ {
			name := randFields[j]
			m.Fields = append(m.Fields, &schema.Field{
				Name:  name,
				Type:  randType(r, s),
				Read:  randPolicy(r, s, m),
				Write: randPolicy(r, s, m),
			})
		}
		mustDo(s.AddModel(m))
	}
	mustCheck(s)
	return s
}

// MutateSchema returns a structurally edited clone of s: a few random
// field additions/removals, policy changes, model creations/deletions, and
// principal promotions. Every candidate edit is kept only if the result
// still type-checks, so the output is always a valid diff target.
func MutateSchema(r *rand.Rand, s *schema.Schema) *schema.Schema {
	cur := s.Clone()
	edits := 1 + r.Intn(3)
	for i := 0; i < edits; i++ {
		cand := cur.Clone()
		switch r.Intn(6) {
		case 0: // add a field (sometimes Id-typed: exercises NoInitialiser)
			if m := randModel(r, cand); m != nil {
				name := randFields[r.Intn(len(randFields))]
				if m.Field(name) == nil {
					m.Fields = append(m.Fields, &schema.Field{
						Name:  name,
						Type:  randType(r, cand),
						Read:  randPolicy(r, cand, m),
						Write: randPolicy(r, cand, m),
					})
				}
			}
		case 1: // remove a field
			if m := randModel(r, cand); m != nil && len(m.Fields) > 0 {
				k := r.Intn(len(m.Fields))
				m.Fields = append(m.Fields[:k], m.Fields[k+1:]...)
			}
		case 2: // rewrite a field policy
			if m := randModel(r, cand); m != nil && len(m.Fields) > 0 {
				f := m.Fields[r.Intn(len(m.Fields))]
				if r.Intn(2) == 0 {
					f.Read = randPolicy(r, cand, m)
				} else {
					f.Write = randPolicy(r, cand, m)
				}
			}
		case 3: // rewrite a model policy
			if m := randModel(r, cand); m != nil {
				if r.Intn(2) == 0 {
					m.Create = randPolicy(r, cand, m)
				} else {
					m.Delete = randPolicy(r, cand, m)
				}
			}
		case 4: // create a model under an unused pool name
			for _, name := range randModels {
				if cand.Model(name) == nil {
					m := &schema.Model{Name: name}
					m.Create = randPolicy(r, cand, m)
					m.Delete = randPolicy(r, cand, m)
					m.Fields = append(m.Fields, &schema.Field{
						Name: randFields[r.Intn(len(randFields))],
						Type: randScalars[r.Intn(len(randScalars))],
						Read: ast.PublicPolicy(token.Pos{}), Write: ast.NonePolicy(token.Pos{}),
					})
					mustDo(cand.AddModel(m))
					break
				}
			}
		case 5: // delete a model
			if m := randModel(r, cand); m != nil {
				cand.RemoveModel(m.Name)
			}
		}
		// Keep the edit only if the schema still type-checks (deleting a
		// referenced model, say, is rejected here rather than guarded
		// against case by case).
		if typer.New(cand).CheckSchema() == nil {
			cur = cand
		}
	}
	mustCheck(cur)
	return cur
}

func randModel(r *rand.Rand, s *schema.Schema) *schema.Model {
	if len(s.Models) == 0 {
		return nil
	}
	return s.Models[r.Intn(len(s.Models))]
}

// randType draws a field type; Id and nested types reference models
// already present in s.
func randType(r *rand.Rand, s *schema.Schema) ast.Type {
	scalar := randScalars[r.Intn(len(randScalars))]
	switch r.Intn(8) {
	case 0:
		return ast.OptionType(scalar)
	case 1:
		return ast.SetType(scalar)
	case 2, 3:
		if m := randModel(r, s); m != nil {
			switch r.Intn(3) {
			case 0:
				return ast.IdType(m.Name)
			case 1:
				return ast.OptionType(ast.IdType(m.Name))
			default:
				return ast.SetType(ast.IdType(m.Name))
			}
		}
	}
	return scalar
}

// randPolicy draws a policy valid on model m within s: public, none, a
// static-principal set, or the row itself when m is a principal.
func randPolicy(r *rand.Rand, s *schema.Schema, m *schema.Model) ast.Policy {
	pos := token.Pos{}
	choices := []func() ast.Policy{
		func() ast.Policy { return ast.PublicPolicy(pos) },
		func() ast.Policy { return ast.NonePolicy(pos) },
	}
	if len(s.Statics) > 0 {
		st := s.Statics[r.Intn(len(s.Statics))]
		choices = append(choices, func() ast.Policy {
			return ast.FuncPolicy(ast.NewFuncLit(pos, "_",
				ast.NewSetLit(pos, []ast.Expr{ast.NewVar(pos, st)})))
		})
	}
	if m.Principal {
		choices = append(choices, func() ast.Policy {
			return ast.FuncPolicy(ast.NewFuncLit(pos, "u",
				ast.NewSetLit(pos, []ast.Expr{ast.NewVar(pos, "u")})))
		})
	}
	return choices[r.Intn(len(choices))]()
}

func mustDo(err error) {
	if err != nil {
		panic(fmt.Sprintf("gen: random schema construction: %v", err))
	}
}

func mustCheck(s *schema.Schema) {
	if err := typer.New(s).CheckSchema(); err != nil {
		panic(fmt.Sprintf("gen: random schema does not type-check: %v", err))
	}
}
