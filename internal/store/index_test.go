package store

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestIndexedFindMatchesScan(t *testing.T) {
	mk := func(indexed bool) *Collection {
		db := Open()
		c := db.Collection("User")
		if indexed {
			c.EnsureIndex("name")
			c.EnsureIndex("age")
		}
		return c
	}
	seed := func(c *Collection, rng *rand.Rand) []ID {
		var ids []ID
		for i := 0; i < 200; i++ {
			ids = append(ids, c.Insert(Doc{
				"name": fmt.Sprintf("n%d", rng.Intn(10)),
				"age":  int64(rng.Intn(5)),
			}))
		}
		return ids
	}
	indexed, plain := mk(true), mk(false)
	seed(indexed, rand.New(rand.NewSource(1)))
	seed(plain, rand.New(rand.NewSource(1)))

	queries := [][]Filter{
		{Eq("name", "n3")},
		{Eq("name", "n3"), Eq("age", int64(2))},
		{Eq("name", "missing")},
		{Eq("age", int64(0))},
		{{Field: "age", Op: FilterGe, Value: int64(3)}}, // non-eq: scan path
		{Eq("name", "n1"), {Field: "age", Op: FilterLt, Value: int64(4)}},
	}
	for _, q := range queries {
		a, b := indexed.Find(q...), plain.Find(q...)
		if len(a) != len(b) {
			t.Fatalf("query %v: indexed %d, scan %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID() != b[i].ID() {
				t.Fatalf("query %v: result %d differs", q, i)
			}
		}
		if indexed.Count(q...) != plain.Count(q...) {
			t.Fatalf("query %v: counts differ", q)
		}
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	db := Open()
	c := db.Collection("User")
	c.EnsureIndex("team")
	rng := rand.New(rand.NewSource(2))
	var ids []ID
	for i := 0; i < 100; i++ {
		ids = append(ids, c.Insert(Doc{"team": int64(rng.Intn(4))}))
	}
	for i := 0; i < 500; i++ {
		switch rng.Intn(4) {
		case 0:
			ids = append(ids, c.Insert(Doc{"team": int64(rng.Intn(4))}))
		case 1:
			id := ids[rng.Intn(len(ids))]
			c.Update(id, Doc{"team": int64(rng.Intn(4))})
		case 2:
			id := ids[rng.Intn(len(ids))]
			c.Delete(id)
		case 3:
			team := int64(rng.Intn(4))
			want := 0
			for _, d := range c.Find() {
				if d["team"] == team {
					want++
				}
			}
			if got := c.Count(Eq("team", team)); got != want {
				t.Fatalf("iter %d: indexed count %d, scan %d", i, got, want)
			}
		}
		if err := c.checkIndexInvariant(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestIndexBackfillAndRemoveField(t *testing.T) {
	db := Open()
	c := db.Collection("User")
	for i := 0; i < 20; i++ {
		c.Insert(Doc{"tag": fmt.Sprintf("t%d", i%3)})
	}
	// Index installed after data exists must backfill.
	c.EnsureIndex("tag")
	if got := c.Count(Eq("tag", "t0")); got != 7 {
		t.Fatalf("t0 count: %d", got)
	}
	// Removing the field leaves documents findable (nothing matches).
	c.RemoveField("tag")
	if got := c.Count(Eq("tag", "t0")); got != 0 {
		t.Fatalf("after removal: %d", got)
	}
	if err := c.checkIndexInvariant(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Indexes()); got != 1 {
		t.Fatalf("indexes: %d", got)
	}
}

func TestEnsureIndexIdempotentAndIdNoop(t *testing.T) {
	db := Open()
	c := db.Collection("User")
	c.EnsureIndex("x")
	c.EnsureIndex("x")
	c.EnsureIndex("id")
	if got := len(c.Indexes()); got != 1 {
		t.Fatalf("indexes: %v", c.Indexes())
	}
}

func BenchmarkFindEq_Scan(b *testing.B) {
	db := Open()
	c := db.Collection("User")
	for i := 0; i < 10000; i++ {
		c.Insert(Doc{"team": int64(i % 100)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(c.Find(Eq("team", int64(i%100)))); got != 100 {
			b.Fatalf("got %d", got)
		}
	}
}

func BenchmarkFindEq_Indexed(b *testing.B) {
	db := Open()
	c := db.Collection("User")
	c.EnsureIndex("team")
	for i := 0; i < 10000; i++ {
		c.Insert(Doc{"team": int64(i % 100)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(c.Find(Eq("team", int64(i%100)))); got != 100 {
			b.Fatalf("got %d", got)
		}
	}
}
