package store

import "fmt"

// Secondary hash indexes. Policies translate into many equality queries
// (author lookups, Find({field: v}) probes), which scan without an index.
// EnsureIndex installs a hash index on one field; Find and Count use it
// automatically for equality filters, and mutations keep it current.
//
// Index keys cover the hashable scalar values (int64, float64, bool,
// string, ID). Sets, Optionals, and missing fields are tracked under a
// sentinel bucket so indexed queries never miss documents.

// indexKey converts a value into a map key; ok is false for values the
// index cannot key (which fall back to the scan path).
func indexKey(v Value) (any, bool) {
	switch v.(type) {
	case int64, float64, bool, string, ID:
		return v, true
	}
	return nil, false
}

type fieldIndex struct {
	field string
	// buckets maps an index key to the ids of documents holding it.
	buckets map[any]map[ID]struct{}
	// unkeyed holds ids whose field value is absent or un-keyable.
	unkeyed map[ID]struct{}
}

func newFieldIndex(field string) *fieldIndex {
	return &fieldIndex{
		field:   field,
		buckets: map[any]map[ID]struct{}{},
		unkeyed: map[ID]struct{}{},
	}
}

func (ix *fieldIndex) add(id ID, doc Doc) {
	v, present := doc[ix.field]
	if !present {
		ix.unkeyed[id] = struct{}{}
		return
	}
	key, ok := indexKey(v)
	if !ok {
		ix.unkeyed[id] = struct{}{}
		return
	}
	b := ix.buckets[key]
	if b == nil {
		b = map[ID]struct{}{}
		ix.buckets[key] = b
	}
	b[id] = struct{}{}
}

func (ix *fieldIndex) remove(id ID, doc Doc) {
	delete(ix.unkeyed, id)
	v, present := doc[ix.field]
	if !present {
		return
	}
	if key, ok := indexKey(v); ok {
		if b := ix.buckets[key]; b != nil {
			delete(b, id)
			if len(b) == 0 {
				delete(ix.buckets, key)
			}
		}
	}
}

// candidates returns the ids possibly matching field == v, or ok=false when
// the index cannot answer (un-keyable probe value).
func (ix *fieldIndex) candidates(v Value) ([]ID, bool) {
	key, ok := indexKey(v)
	if !ok {
		return nil, false
	}
	out := make([]ID, 0, len(ix.buckets[key])+len(ix.unkeyed))
	for id := range ix.buckets[key] {
		out = append(out, id)
	}
	// Unkeyed documents can never equal a keyable probe value, so they are
	// excluded: a missing field matches no filter, and set/optional values
	// do not compare equal to scalars.
	return out, true
}

// EnsureIndex installs (or reuses) a hash index on the field and backfills
// it from existing documents.
func (c *Collection) EnsureIndex(field string) {
	if field == "id" {
		return // the primary map already serves id lookups
	}
	c.mu.Lock()
	if c.indexes == nil {
		c.indexes = map[string]*fieldIndex{}
	}
	if _, ok := c.indexes[field]; ok {
		c.mu.Unlock()
		return
	}
	ix := newFieldIndex(field)
	for id, d := range c.docs {
		ix.add(id, d)
	}
	c.indexes[field] = ix
	wait := c.db.logMutation(Mutation{Op: MutCreateIndex, Coll: c.name, Field: field})
	c.mu.Unlock()
	c.db.finish(wait)
}

// Indexes lists the indexed fields.
func (c *Collection) Indexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.indexes))
	for f := range c.indexes {
		out = append(out, f)
	}
	return out
}

// indexAdd/indexRemove maintain every index; callers hold the write lock.
func (c *Collection) indexAdd(id ID, doc Doc) {
	for _, ix := range c.indexes {
		ix.add(id, doc)
	}
}

func (c *Collection) indexRemove(id ID, doc Doc) {
	for _, ix := range c.indexes {
		ix.remove(id, doc)
	}
}

// indexProbe finds the most selective equality filter backed by an index
// and returns the candidate ids; ok=false means no usable index.
func (c *Collection) indexProbe(filters []Filter) ([]ID, bool) {
	if len(c.indexes) == 0 {
		return nil, false
	}
	best := -1
	var bestIDs []ID
	for _, f := range filters {
		if f.Op != FilterEq {
			continue
		}
		ix, ok := c.indexes[f.Field]
		if !ok {
			continue
		}
		ids, ok := ix.candidates(f.Value)
		if !ok {
			continue
		}
		if best == -1 || len(ids) < best {
			best = len(ids)
			bestIDs = ids
		}
	}
	return bestIDs, best >= 0
}

// checkIndexInvariant validates that every index covers exactly the live
// documents; exposed for tests.
func (c *Collection) checkIndexInvariant() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for field, ix := range c.indexes {
		count := len(ix.unkeyed)
		for _, b := range ix.buckets {
			count += len(b)
		}
		if count != len(c.docs) {
			return fmt.Errorf("index %s covers %d docs, collection has %d", field, count, len(c.docs))
		}
	}
	return nil
}
