package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot / Restore give the in-memory store durability: the full database
// serialises to a typed JSON document and loads back losslessly. Plain
// encoding/json cannot round-trip the value universe (int64 vs float64, ID
// vs int, Optional), so every value carries a type tag.

// snapshotFile is the on-disk layout.
type snapshotFile struct {
	Version     int                       `json:"version"`
	NextID      int64                     `json:"nextId"`
	Collections map[string]collectionSnap `json:"collections"`
}

type collectionSnap struct {
	Indexes []string           `json:"indexes,omitempty"`
	Docs    map[string]docSnap `json:"docs"` // key: decimal id
}

type docSnap map[string]taggedValue

type taggedValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v"`
}

func encodeValue(v Value) (taggedValue, error) {
	mk := func(t string, v any) (taggedValue, error) {
		raw, err := json.Marshal(v)
		if err != nil {
			return taggedValue{}, err
		}
		return taggedValue{T: t, V: raw}, nil
	}
	switch x := v.(type) {
	case nil:
		return mk("null", nil)
	case int64:
		return mk("i", x)
	case float64:
		return mk("f", x)
	case bool:
		return mk("b", x)
	case string:
		return mk("s", x)
	case ID:
		return mk("id", int64(x))
	case []Value:
		elems := make([]taggedValue, len(x))
		for i, e := range x {
			tv, err := encodeValue(e)
			if err != nil {
				return taggedValue{}, err
			}
			elems[i] = tv
		}
		return mk("set", elems)
	case Optional:
		if !x.Present {
			return mk("none", nil)
		}
		inner, err := encodeValue(x.Value)
		if err != nil {
			return taggedValue{}, err
		}
		return mk("some", inner)
	}
	return taggedValue{}, fmt.Errorf("store: value %T cannot be serialised", v)
}

func decodeValue(tv taggedValue) (Value, error) {
	switch tv.T {
	case "null":
		return nil, nil
	case "i":
		var n int64
		err := json.Unmarshal(tv.V, &n)
		return n, err
	case "f":
		var f float64
		err := json.Unmarshal(tv.V, &f)
		return f, err
	case "b":
		var b bool
		err := json.Unmarshal(tv.V, &b)
		return b, err
	case "s":
		var s string
		err := json.Unmarshal(tv.V, &s)
		return s, err
	case "id":
		var n int64
		err := json.Unmarshal(tv.V, &n)
		return ID(n), err
	case "set":
		var elems []taggedValue
		if err := json.Unmarshal(tv.V, &elems); err != nil {
			return nil, err
		}
		out := make([]Value, len(elems))
		for i, e := range elems {
			v, err := decodeValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "none":
		return None(), nil
	case "some":
		var inner taggedValue
		if err := json.Unmarshal(tv.V, &inner); err != nil {
			return nil, err
		}
		v, err := decodeValue(inner)
		if err != nil {
			return nil, err
		}
		return Some(v), nil
	}
	return nil, fmt.Errorf("store: unknown value tag %q", tv.T)
}

// Snapshot writes the whole database as JSON. Collections are written in
// sorted order so snapshots are deterministic.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	file := snapshotFile{
		Version:     1,
		NextID:      db.nextID.Load(),
		Collections: map[string]collectionSnap{},
	}
	colls := make([]*Collection, len(names))
	for i, n := range names {
		colls[i] = db.colls[n]
	}
	db.mu.RUnlock()

	for i, c := range colls {
		c.mu.RLock()
		snap := collectionSnap{Docs: map[string]docSnap{}}
		for f := range c.indexes {
			snap.Indexes = append(snap.Indexes, f)
		}
		sort.Strings(snap.Indexes)
		for id, d := range c.docs {
			ds := docSnap{}
			for k, v := range d {
				if k == "id" {
					continue // implicit in the key
				}
				tv, err := encodeValue(v)
				if err != nil {
					c.mu.RUnlock()
					return fmt.Errorf("collection %s doc %v field %s: %w", names[i], id, k, err)
				}
				ds[k] = tv
			}
			snap.Docs[fmt.Sprint(int64(id))] = ds
		}
		c.mu.RUnlock()
		file.Collections[names[i]] = snap
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// Restore loads a snapshot into a fresh database.
func Restore(r io.Reader) (*DB, error) {
	var file snapshotFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	if file.Version != 1 {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", file.Version)
	}
	db := Open()
	db.nextID.Store(file.NextID)
	for name, snap := range file.Collections {
		c := db.Collection(name)
		for _, field := range snap.Indexes {
			c.EnsureIndex(field)
		}
		for idStr, ds := range snap.Docs {
			var idNum int64
			if _, err := fmt.Sscan(idStr, &idNum); err != nil {
				return nil, fmt.Errorf("store: bad document id %q: %w", idStr, err)
			}
			doc := Doc{}
			for k, tv := range ds {
				v, err := decodeValue(tv)
				if err != nil {
					return nil, fmt.Errorf("store: %s/%s.%s: %w", name, idStr, k, err)
				}
				doc[k] = v
			}
			if err := c.InsertWithID(ID(idNum), doc); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
