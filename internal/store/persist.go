package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot / Restore give the in-memory store durability: the full database
// serialises to a typed JSON document and loads back losslessly. Plain
// encoding/json cannot round-trip the value universe (int64 vs float64, ID
// vs int, Optional), so every value carries a type tag.

// snapshotFile is the on-disk layout.
type snapshotFile struct {
	Version     int                       `json:"version"`
	NextID      int64                     `json:"nextId"`
	Collections map[string]collectionSnap `json:"collections"`
}

type collectionSnap struct {
	Indexes []string           `json:"indexes,omitempty"`
	Docs    map[string]docSnap `json:"docs"` // key: decimal id
}

type docSnap map[string]taggedValue

type taggedValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v"`
}

func encodeValue(v Value) (taggedValue, error) {
	mk := func(t string, v any) (taggedValue, error) {
		raw, err := json.Marshal(v)
		if err != nil {
			return taggedValue{}, err
		}
		return taggedValue{T: t, V: raw}, nil
	}
	switch x := v.(type) {
	case nil:
		return mk("null", nil)
	case int64:
		return mk("i", x)
	case float64:
		return mk("f", x)
	case bool:
		return mk("b", x)
	case string:
		return mk("s", x)
	case ID:
		return mk("id", int64(x))
	case []Value:
		elems := make([]taggedValue, len(x))
		for i, e := range x {
			tv, err := encodeValue(e)
			if err != nil {
				return taggedValue{}, err
			}
			elems[i] = tv
		}
		return mk("set", elems)
	case Optional:
		if !x.Present {
			return mk("none", nil)
		}
		inner, err := encodeValue(x.Value)
		if err != nil {
			return taggedValue{}, err
		}
		return mk("some", inner)
	}
	return taggedValue{}, fmt.Errorf("store: value %T cannot be serialised", v)
}

func decodeValue(tv taggedValue) (Value, error) {
	switch tv.T {
	case "null":
		return nil, nil
	case "i":
		var n int64
		err := json.Unmarshal(tv.V, &n)
		return n, err
	case "f":
		var f float64
		err := json.Unmarshal(tv.V, &f)
		return f, err
	case "b":
		var b bool
		err := json.Unmarshal(tv.V, &b)
		return b, err
	case "s":
		var s string
		err := json.Unmarshal(tv.V, &s)
		return s, err
	case "id":
		var n int64
		err := json.Unmarshal(tv.V, &n)
		return ID(n), err
	case "set":
		var elems []taggedValue
		if err := json.Unmarshal(tv.V, &elems); err != nil {
			return nil, err
		}
		out := make([]Value, len(elems))
		for i, e := range elems {
			v, err := decodeValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "none":
		return None(), nil
	case "some":
		var inner taggedValue
		if err := json.Unmarshal(tv.V, &inner); err != nil {
			return nil, err
		}
		v, err := decodeValue(inner)
		if err != nil {
			return nil, err
		}
		return Some(v), nil
	}
	return nil, fmt.Errorf("store: unknown value tag %q", tv.T)
}

// Snapshot writes the whole database as JSON. Collections are written in
// sorted order so snapshots are deterministic. The snapshot is a consistent
// point-in-time cut: every collection lock is acquired before any data is
// read, so a concurrent writer's mutations are either all visible or all
// absent relative to the mutations that happened before them.
func (db *DB) Snapshot(w io.Writer) error { return db.SnapshotCut(w, nil) }

// SnapshotCut is Snapshot with a hook invoked at the cut point, while every
// lock is held and no writer can sit between applying a mutation and
// logging it. The WAL uses the hook to rotate segments exactly at the
// snapshot boundary during compaction.
func (db *DB) SnapshotCut(w io.Writer, cut func()) error {
	file, err := db.capture(cut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// capture encodes the database under a full lock set: the DB lock plus
// every collection lock, acquired in sorted name order before any document
// is read. Encoding deep-copies values into JSON bytes, so the result is
// immune to mutations after release.
func (db *DB) capture(cut func()) (*snapshotFile, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	colls := make([]*Collection, len(names))
	for i, n := range names {
		colls[i] = db.colls[n]
		colls[i].mu.RLock()
		defer colls[i].mu.RUnlock()
	}

	if cut != nil {
		cut()
	}

	file := &snapshotFile{
		Version:     1,
		NextID:      db.nextID.Load(),
		Collections: map[string]collectionSnap{},
	}
	for i, c := range colls {
		snap := collectionSnap{Docs: map[string]docSnap{}}
		for f := range c.indexes {
			snap.Indexes = append(snap.Indexes, f)
		}
		sort.Strings(snap.Indexes)
		for id, d := range c.docs {
			ds := docSnap{}
			for k, v := range d {
				if k == "id" {
					continue // implicit in the key
				}
				tv, err := encodeValue(v)
				if err != nil {
					return nil, fmt.Errorf("collection %s doc %v field %s: %w", names[i], id, k, err)
				}
				ds[k] = tv
			}
			snap.Docs[fmt.Sprint(int64(id))] = ds
		}
		file.Collections[names[i]] = snap
	}
	return file, nil
}

// MarshalDoc encodes a document with the same typed tagging Snapshot uses,
// skipping the "id" field (it travels beside the document). The WAL logs
// documents in this form.
func MarshalDoc(d Doc) ([]byte, error) {
	ds := docSnap{}
	for k, v := range d {
		if k == "id" {
			continue
		}
		tv, err := encodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", k, err)
		}
		ds[k] = tv
	}
	return json.Marshal(ds)
}

// UnmarshalDoc decodes a MarshalDoc payload.
func UnmarshalDoc(b []byte) (Doc, error) {
	var ds docSnap
	if err := json.Unmarshal(b, &ds); err != nil {
		return nil, err
	}
	doc := Doc{}
	for k, tv := range ds {
		v, err := decodeValue(tv)
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", k, err)
		}
		doc[k] = v
	}
	return doc, nil
}

// Restore loads a snapshot into a fresh database.
func Restore(r io.Reader) (*DB, error) {
	var file snapshotFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	if file.Version != 1 {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", file.Version)
	}
	db := Open()
	db.nextID.Store(file.NextID)
	for name, snap := range file.Collections {
		c := db.Collection(name)
		for _, field := range snap.Indexes {
			c.EnsureIndex(field)
		}
		for idStr, ds := range snap.Docs {
			var idNum int64
			if _, err := fmt.Sscan(idStr, &idNum); err != nil {
				return nil, fmt.Errorf("store: bad document id %q: %w", idStr, err)
			}
			doc := Doc{}
			for k, tv := range ds {
				v, err := decodeValue(tv)
				if err != nil {
					return nil, fmt.Errorf("store: %s/%s.%s: %w", name, idStr, k, err)
				}
				doc[k] = v
			}
			if err := c.InsertWithID(ID(idNum), doc); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
