package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"scooter/internal/store"
)

// collect reads n frames from the tail with a test deadline.
func collect(t *testing.T, tl *Tail, n int) []Frame {
	t.Helper()
	stop := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() { close(stop) })
	defer timer.Stop()
	frames := make([]Frame, 0, n)
	for len(frames) < n {
		fr, err := tl.Next(stop)
		if err != nil {
			t.Fatalf("tail next (have %d/%d): %v", len(frames), n, err)
		}
		frames = append(frames, fr)
	}
	return frames
}

func TestTailReadsHistoryAndFollowsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotations mid-stream.
	l, db, err := Open(dir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mustClose(t, l)
	users := db.Collection("users")
	for i := 0; i < 10; i++ {
		users.Insert(store.Doc{"name": fmt.Sprintf("u%d", i)})
	}

	tl, err := l.TailFrom(1)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tl.Close()
	frames := collect(t, tl, int(l.DurableLSN()))
	for i, fr := range frames {
		if fr.LSN != uint64(i+1) {
			t.Fatalf("frame %d has LSN %d", i, fr.LSN)
		}
		if _, err := ParseFrame(fr.Data); err != nil {
			t.Fatalf("frame %d does not reparse: %v", i, err)
		}
	}

	// Live follow: appends made after the tail caught up must flow through,
	// across at least one more rotation.
	before := l.DurableLSN()
	for i := 0; i < 20; i++ {
		users.Insert(store.Doc{"name": fmt.Sprintf("v%d", i), "pad": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"})
	}
	after := l.DurableLSN()
	if after <= before {
		t.Fatal("durable watermark did not advance")
	}
	live := collect(t, tl, int(after-before))
	if live[0].LSN != before+1 || live[len(live)-1].LSN != after {
		t.Fatalf("live frames cover [%d,%d], want [%d,%d]",
			live[0].LSN, live[len(live)-1].LSN, before+1, after)
	}
}

func TestTailFromMidHistorySkipsOlderRecords(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mustClose(t, l)
	for i := 0; i < 12; i++ {
		db.Collection("users").Insert(store.Doc{"i": int64(i)})
	}
	last := l.DurableLSN()
	from := last - 3
	tl, err := l.TailFrom(from)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tl.Close()
	frames := collect(t, tl, int(last-from+1))
	if frames[0].LSN != from {
		t.Fatalf("first frame LSN %d, want %d", frames[0].LSN, from)
	}
}

func TestTailGatesOnDurability(t *testing.T) {
	dir := t.TempDir()
	// SyncEvery < 0: nothing is durable until an explicit Sync.
	l, db, err := Open(dir, Options{SyncEvery: -1, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mustClose(t, l)
	tl, err := l.TailFrom(1)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tl.Close()

	db.Collection("users").Insert(store.Doc{"name": "alice"})
	stop := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { close(stop) })
	if _, err := tl.Next(stop); err != ErrTailStopped {
		t.Fatalf("tail yielded an unsynced record (err=%v)", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	frames := collect(t, tl, int(l.DurableLSN()))
	if len(frames) == 0 {
		t.Fatal("no frames after sync")
	}
}

func TestTailEOFOnClose(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Collection("users").Insert(store.Doc{"name": "alice"})
	tl, err := l.TailFrom(1)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tl.Close()
	collect(t, tl, int(l.DurableLSN()))
	mustClose(t, l)
	if _, err := tl.Next(nil); err != io.EOF {
		t.Fatalf("tail after close: err=%v, want io.EOF", err)
	}
}

func TestTailFromCompactedLSNAndBootstrap(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mustClose(t, l)
	for i := 0; i < 20; i++ {
		db.Collection("users").Insert(store.Doc{"i": int64(i)})
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := l.TailFrom(1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("TailFrom(1) after compaction: err=%v, want ErrCompacted", err)
	}

	snap, snapLSN, tl, err := l.BootstrapTail()
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	defer tl.Close()
	if snapLSN == 0 || len(snap) == 0 {
		t.Fatalf("empty bootstrap: lsn=%d snap=%d bytes", snapLSN, len(snap))
	}
	// The snapshot state plus the streamed records must equal the primary.
	restored, err := store.Restore(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("restore bootstrap snapshot: %v", err)
	}
	frames := collect(t, tl, int(l.DurableLSN()-snapLSN))
	for _, fr := range frames {
		p, err := ParseFrame(fr.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", fr.LSN, err)
		}
		if err := p.Apply(restored); err != nil {
			t.Fatalf("apply %d: %v", fr.LSN, err)
		}
	}
	if got, want := snapshotBytes(t, restored), snapshotBytes(t, db); !bytes.Equal(got, want) {
		t.Fatal("bootstrap + stream does not reproduce the primary state")
	}
}

// TestMirrorLogRoundTrip is the follower's whole durability story in
// miniature: frames tailed from a primary are appended raw (with primary
// LSNs) into a second log whose store has no durability hook, applied to
// that store, and the mirror directory recovers to the identical state.
func TestMirrorLogRoundTrip(t *testing.T) {
	primaryDir, mirrorDir := t.TempDir(), t.TempDir()
	pl, pdb, err := Open(primaryDir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	defer mustClose(t, pl)
	users := pdb.Collection("users")
	users.EnsureIndex("name")
	var ids []store.ID
	for i := 0; i < 15; i++ {
		ids = append(ids, users.Insert(store.Doc{"name": fmt.Sprintf("u%d", i), "age": int64(i)}))
	}
	users.Update(ids[3], store.Doc{"age": int64(99), "opt": store.Some(int64(1))})
	users.Delete(ids[5])

	ml, mdb, err := Open(mirrorDir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open mirror: %v", err)
	}
	mdb.SetDurability(nil) // the mirror loop logs raw frames itself

	tl, err := pl.TailFrom(1)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tl.Close()
	for _, fr := range collect(t, tl, int(pl.DurableLSN())) {
		p, err := ParseFrame(fr.Data)
		if err != nil {
			t.Fatalf("parse %d: %v", fr.LSN, err)
		}
		wait := ml.AppendRaw(fr.LSN, fr.Data)
		if err := p.Apply(mdb); err != nil {
			t.Fatalf("apply %d: %v", fr.LSN, err)
		}
		if err := wait(); err != nil {
			t.Fatalf("mirror append %d: %v", fr.LSN, err)
		}
	}
	if got, want := snapshotBytes(t, mdb), snapshotBytes(t, pdb); !bytes.Equal(got, want) {
		t.Fatal("mirror state differs from primary before crash")
	}
	if got, want := ml.LastLSN(), pl.LastLSN(); got != want {
		t.Fatalf("mirror LastLSN %d, primary %d", got, want)
	}
	mustClose(t, ml)

	// Crash-recover the mirror: replay must land on the same state and the
	// same (primary) LSN watermark.
	ml2, mdb2, err := Open(mirrorDir, Options{})
	if err != nil {
		t.Fatalf("reopen mirror: %v", err)
	}
	defer mustClose(t, ml2)
	if got, want := snapshotBytes(t, mdb2), snapshotBytes(t, pdb); !bytes.Equal(got, want) {
		t.Fatal("recovered mirror differs from primary")
	}
	if got, want := ml2.LastLSN(), pl.LastLSN(); got != want {
		t.Fatalf("recovered mirror LastLSN %d, primary %d", got, want)
	}
}

func TestAppendRawRejectsRegressingLSN(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer mustClose(t, l)
	db.SetDurability(nil)
	frame, err := encodeMutation(5, store.Mutation{Op: store.MutCreateCollection, Coll: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRaw(5, frame)(); err != nil {
		t.Fatalf("first raw append: %v", err)
	}
	if err := l.AppendRaw(5, frame)(); err == nil {
		t.Fatal("duplicate LSN accepted")
	}
	if err := l.AppendRaw(4, frame)(); err == nil {
		t.Fatal("regressing LSN accepted")
	}
}
