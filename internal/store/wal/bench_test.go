package wal

import (
	"fmt"
	"testing"

	"scooter/internal/store"
)

// BenchmarkWALGroupCommit measures durable insert throughput with many
// concurrent writers sharing fsyncs through the committer (SyncEvery: 1 —
// every insert is durable before it returns, but one fsync covers a whole
// batch). Compare against BenchmarkWALPerWriteFsync, where each insert
// pays its own fsync; the gap is the group-commit win reported in
// EXPERIMENTS.md.
func BenchmarkWALGroupCommit(b *testing.B) {
	l, db, err := Open(b.TempDir(), Options{SyncEvery: 1, SegmentMaxBytes: 1 << 30, CompactAfterBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	users := db.Collection("users")
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			users.Insert(store.Doc{"name": "bench", "age": int64(30)})
		}
	})
	b.StopTimer()
	if err := db.DurabilityErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALPerWriteFsync is the baseline: one writer, so every durable
// insert is its own commit group and its own fsync.
func BenchmarkWALPerWriteFsync(b *testing.B) {
	l, db, err := Open(b.TempDir(), Options{SyncEvery: 1, SegmentMaxBytes: 1 << 30, CompactAfterBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	users := db.Collection("users")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		users.Insert(store.Doc{"name": "bench", "age": int64(30)})
	}
	b.StopTimer()
	if err := db.DurabilityErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALRelaxedSync measures the batched-durability mode (fsync every
// 64 records or 10ms) with a single writer.
func BenchmarkWALRelaxedSync(b *testing.B) {
	l, db, err := Open(b.TempDir(), Options{SyncEvery: 64, SegmentMaxBytes: 1 << 30, CompactAfterBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	users := db.Collection("users")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		users.Insert(store.Doc{"name": "bench", "age": int64(30)})
	}
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	l.Close()
}

// BenchmarkWALRecovery measures Open (replay) time against log size.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, db, err := Open(dir, Options{SyncEvery: -1, SegmentMaxBytes: 1 << 30, CompactAfterBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			users := db.Collection("users")
			for i := 0; i < n; i++ {
				users.Insert(store.Doc{"name": fmt.Sprintf("u%d", i), "age": int64(i % 80)})
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, _, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got := l.Replayed(); got != n+1 { // +1: create-collection record
					b.Fatalf("replayed %d, want %d", got, n+1)
				}
				b.StopTimer()
				// Close appends nothing, but reopening must see the same
				// log, so keep teardown out of the timed region.
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
