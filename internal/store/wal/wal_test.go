package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"scooter/internal/obs"
	"scooter/internal/store"
)

// snapshotBytes captures the store as its canonical snapshot encoding; two
// stores with equal bytes hold identical data.
func snapshotBytes(t *testing.T, db *store.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

func mustClose(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestFreshOpenReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if l.Replayed() != 0 {
		t.Fatalf("fresh dir replayed %d records", l.Replayed())
	}
	if db.Collection("users").Len() != 0 {
		t.Fatal("fresh db not empty")
	}
	mustClose(t, l)
}

func TestReopenRecoversAllOps(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	users := db.Collection("users")
	users.EnsureIndex("name")
	id1 := users.Insert(store.Doc{"name": "alice", "age": int64(30), "tags": []store.Value{"a", "b"}})
	id2 := users.Insert(store.Doc{"name": "bob", "opt": store.Some(int64(7))})
	if err := users.Update(id1, store.Doc{"age": int64(31), "none": store.None()}); err != nil {
		t.Fatalf("update: %v", err)
	}
	users.RemoveField("tags")
	if !users.Delete(id2) {
		t.Fatal("delete failed")
	}
	db.Collection("scratch").Insert(store.Doc{"x": int64(1)})
	db.DropCollection("scratch")
	want := snapshotBytes(t, db)
	mustClose(t, l)

	l2, db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if l2.Replayed() == 0 {
		t.Fatal("reopen replayed nothing")
	}
	if got := snapshotBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}
	// Recovered id allocator must not reuse ids.
	id3 := db2.Collection("users").Insert(store.Doc{"name": "carol"})
	if id3 <= id1 {
		t.Fatalf("id %v reused after recovery (last was %v)", id3, id1)
	}
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Collection("docs")
			for i := 0; i < per; i++ {
				c.Insert(store.Doc{"writer": int64(w), "seq": int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := db.DurabilityErr(); err != nil {
		t.Fatalf("durability error: %v", err)
	}
	want := snapshotBytes(t, db)
	mustClose(t, l)

	l2, db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if n := db2.Collection("docs").Len(); n != writers*per {
		t.Fatalf("recovered %d docs, want %d", n, writers*per)
	}
	if got := snapshotBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from pre-close state")
	}
}

func TestRelaxedSyncModes(t *testing.T) {
	for _, opts := range []Options{
		{SyncEvery: 50, SyncInterval: time.Millisecond},
		{SyncEvery: -1},
	} {
		dir := t.TempDir()
		l, db, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		c := db.Collection("docs")
		for i := 0; i < 120; i++ {
			c.Insert(store.Doc{"i": int64(i)})
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		mustClose(t, l)
		_, db2, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if n := db2.Collection("docs").Len(); n != 120 {
			t.Fatalf("SyncEvery=%d: recovered %d docs, want 120", opts.SyncEvery, n)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := db.Collection("docs")
	for i := 0; i < 100; i++ {
		c.Insert(store.Doc{"payload": strings.Repeat("x", 40), "i": int64(i)})
	}
	want := snapshotBytes(t, db)
	mustClose(t, l)

	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	l2, db2, err := Open(dir, Options{SegmentMaxBytes: 512, CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if got := snapshotBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after multi-segment replay")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := db.Collection("docs")
	for i := 0; i < 50; i++ {
		c.Insert(store.Doc{"i": int64(i)})
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// More writes after the compaction land in the new segment.
	for i := 50; i < 60; i++ {
		c.Insert(store.Doc{"i": int64(i)})
	}
	want := snapshotBytes(t, db)
	mustClose(t, l)

	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("expected 1 snapshot, got %d", len(snaps))
	}
	if len(segs) != 1 {
		t.Fatalf("expected old segments pruned, got %d segments", len(segs))
	}
	l2, db2, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	// Only the post-compaction tail replays: the checkpoint plus the ten
	// inserts after the snapshot.
	if l2.Replayed() > 11 {
		t.Fatalf("replayed %d records after compaction, want <= 11", l2.Replayed())
	}
	if got := snapshotBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after compaction")
	}
}

func TestCompactionConcurrentWithWrites(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := db.Collection("docs")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Insert(store.Doc{"i": int64(i)})
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := l.Compact(); err != nil {
			t.Errorf("compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	want := snapshotBytes(t, db)
	mustClose(t, l)

	l2, db2, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if got := snapshotBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after concurrent compaction")
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{CompactAfterBytes: 2048})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c := db.Collection("docs")
	for i := 0; i < 200; i++ {
		c.Insert(store.Doc{"payload": strings.Repeat("y", 30), "i": int64(i)})
	}
	// Wait for the background compaction to finish (Close joins it).
	mustClose(t, l)
	_, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("auto-compaction never produced a snapshot")
	}
	l2, db2, err := Open(dir, Options{CompactAfterBytes: 2048})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if n := db2.Collection("docs").Len(); n != 200 {
		t.Fatalf("recovered %d docs, want 200", n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Collection("docs").Insert(store.Doc{"i": int64(1)})
	mustClose(t, l)
	db.Collection("docs").Insert(store.Doc{"i": int64(2)})
	if err := db.DurabilityErr(); err != ErrClosed {
		t.Fatalf("write after close: err = %v, want ErrClosed", err)
	}
}

func TestStaleSnapshotAndTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db.Collection("docs").Insert(store.Doc{"i": int64(1)})
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	db.Collection("docs").Insert(store.Doc{"i": int64(2)})
	mustClose(t, l)
	// Simulate a crash mid-snapshot-write on the next compaction.
	if err := os.WriteFile(filepath.Join(dir, "snap-00000099.json.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, db2, err := Open(dir, Options{CompactAfterBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mustClose(t, l2)
	if n := db2.Collection("docs").Len(); n != 2 {
		t.Fatalf("recovered %d docs, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-00000099.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp file survived recovery")
	}
}

// TestBatchRecordCapSplitsBulkDrains pins the flush-unit bound: a bulk
// enqueue (the shape an online backfill batch produces) larger than
// MaxBatchRecords must be split into capped chunks — the overflow counter
// ticks — and recovery must still see every record.
func TestBatchRecordCapSplitsBulkDrains(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	wm := obs.NewWALMetrics(reg)
	l, db, err := Open(dir, Options{MaxBatchRecords: 4, Metrics: wm})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	users := db.Collection("users")

	// Bursts from concurrent writers pile records onto the queue faster
	// than the drain loop (fsyncing each pass) clears it; retry bounded
	// rounds until one drain provably exceeded the cap.
	const writers, perWriter = 4, 32
	total := 0
	for round := 0; round < 50 && wm.BatchOverflows.Value() == 0; round++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					users.Insert(store.Doc{"round": int64(w), "n": int64(i)})
				}
			}(w)
		}
		wg.Wait()
		total += writers * perWriter
	}
	if wm.BatchOverflows.Value() == 0 {
		t.Fatal("no drain ever exceeded MaxBatchRecords; cap untested")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	want := snapshotBytes(t, db)
	mustClose(t, l)

	l2, db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if db2.Collection("users").Len() != total {
		t.Fatalf("recovered %d of %d records", db2.Collection("users").Len(), total)
	}
	if !bytes.Equal(snapshotBytes(t, db2), want) {
		t.Fatal("recovered snapshot differs after chunked flushes")
	}
	mustClose(t, l2)
}
