package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Exported record framing, shared with the persistent verdict store
// (internal/verify). The verdict store is a different file format (its own
// magic header, its own payload schema) but deliberately reuses the WAL's
// frame layout — [4B little-endian payload length][4B CRC32C(payload)]
// [payload] — so both sides share one torn-tail discipline and one checksum
// convention.

// FrameOverhead is the number of framing bytes preceding each payload.
const FrameOverhead = frameSize

// EncodeFrame wraps payload in the record frame: length, CRC32C, then the
// payload bytes.
func EncodeFrame(payload []byte) []byte {
	out := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[frameSize:], payload)
	return out
}

// ScanFrames walks framed records in buf starting at offset start, calling
// fn with each well-formed payload. It returns the byte offset just past
// the last well-formed frame and whether the whole buffer was consumed. A
// frame that is short, whose length is implausible, or whose checksum fails
// marks the torn tail: scanning stops there (clean=false) without an error
// or a panic, and the caller truncates at good — the same recovery
// discipline parseSegment applies to WAL segments.
func ScanFrames(buf []byte, start int64, fn func(payload []byte)) (good int64, clean bool) {
	off := start
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			return off, true
		}
		if len(rest) < frameSize {
			return off, false
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxRecordLen || frameSize+n > int64(len(rest)) {
			return off, false
		}
		payload := rest[frameSize : frameSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off, false
		}
		fn(payload)
		off += frameSize + n
	}
}
