package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// ErrCompacted reports that the requested LSN precedes the oldest retained
// segment: compaction folded it into a snapshot, so a reader must bootstrap
// from the snapshot instead of the log.
var ErrCompacted = errors.New("wal: requested LSN was compacted into a snapshot")

// ErrTailStopped reports that a Tail read was cancelled via its stop
// channel.
var ErrTailStopped = errors.New("wal: tail stopped")

// Frame is one log record in its on-disk (and on-wire) framing.
type Frame struct {
	LSN  uint64
	Data []byte // [4B len][4B CRC32C][payload], exactly as stored
}

// Tail is a streaming reader that follows the live log: it yields every
// durable record from a starting LSN, in order, blocking for new records as
// they are committed, and crosses segment rotations and compaction cuts
// transparently. The replication server drives one Tail per follower.
//
// A Tail never yields a record that is not yet durable: shipping an
// unsynced record could leave a follower with state the primary loses in a
// crash, which would break the committed-prefix guarantee. All methods
// except PendingBytes must be called from one goroutine.
type Tail struct {
	l *Log
	// expect is the next LSN whose durability gates the next read; frames
	// below emitFrom are read (they share the file) but not yielded.
	expect   uint64
	emitFrom uint64
	f        *os.File
	seg      atomic.Uint64
	off      atomic.Int64
}

// TailFrom returns a Tail yielding every record with LSN >= from (from 0
// is treated as 1). It fails with ErrCompacted when records at from no
// longer live in the log; the caller then bootstraps via BootstrapTail.
func (l *Log) TailFrom(from uint64) (*Tail, error) {
	if from == 0 {
		from = 1
	}
	// Compaction can prune files between the directory scan and the probe;
	// rescan when a probe hits a vanished file.
	for attempt := 0; ; attempt++ {
		t, err := l.tailFrom(from)
		if err == nil || err == ErrCompacted || attempt >= 5 {
			return t, err
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
}

func (l *Log) tailFrom(from uint64) (*Tail, error) {
	segs, snaps, err := scanDir(l.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("wal: no segments in %s", l.dir)
	}
	idxs := make([]uint64, 0, len(segs))
	for idx := range segs {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	// Choose the newest segment whose first record is at or before from.
	// Segments without a complete first record (freshly rotated) cannot
	// anchor; on a log with no records at all, start at the oldest segment.
	start := uint64(0)
	found := false
	for i := len(idxs) - 1; i >= 0; i-- {
		first, has, err := firstLSNOf(filepath.Join(l.dir, segs[idxs[i]]), idxs[i])
		if err != nil {
			return nil, err
		}
		if has && first <= from {
			start, found = idxs[i], true
			break
		}
	}
	if !found {
		if len(snaps) > 0 {
			// The history before the oldest retained record lives only in a
			// snapshot now.
			return nil, ErrCompacted
		}
		start = idxs[0] // fresh log: every future record lands at or after it
	}
	t := &Tail{l: l, expect: from, emitFrom: from}
	t.seg.Store(start)
	t.off.Store(headerSize)
	return t, nil
}

// BootstrapTail serves a follower that is too far behind to stream: it
// returns the newest snapshot, the LSN its state corresponds to, and a Tail
// positioned at the snapshot's boundary segment (whose first record is the
// compaction checkpoint immediately after the cut).
func (l *Log) BootstrapTail() (snapshot []byte, snapLSN uint64, t *Tail, err error) {
	for attempt := 0; attempt < 5; attempt++ {
		_, snaps, err := scanDir(l.dir)
		if err != nil {
			return nil, 0, nil, err
		}
		if len(snaps) == 0 {
			return nil, 0, nil, errors.New("wal: no snapshot to bootstrap from")
		}
		var boundary uint64
		for idx := range snaps {
			if idx > boundary {
				boundary = idx
			}
		}
		data, err := os.ReadFile(filepath.Join(l.dir, snaps[boundary]))
		if errors.Is(err, os.ErrNotExist) {
			continue // a newer compaction pruned it; rescan
		}
		if err != nil {
			return nil, 0, nil, err
		}
		first, has, err := firstLSNOf(filepath.Join(l.dir, segName(boundary)), boundary)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, 0, nil, err
		}
		if !has {
			return nil, 0, nil, fmt.Errorf("wal: boundary segment %d has no checkpoint record", boundary)
		}
		t := &Tail{l: l, expect: first, emitFrom: first}
		t.seg.Store(boundary)
		t.off.Store(headerSize)
		return data, first - 1, t, nil
	}
	return nil, 0, nil, errors.New("wal: snapshot kept vanishing under concurrent compactions")
}

// firstLSNOf reads the LSN of a segment's first record. has is false when
// the segment holds no complete record yet.
func firstLSNOf(path string, seg uint64) (lsn uint64, has bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var hdr [headerSize + frameSize]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return 0, false, err
	}
	if n < headerSize || string(hdr[:8]) != segMagic {
		return 0, false, fmt.Errorf("wal: %s: bad segment header", path)
	}
	if n < headerSize+frameSize {
		return 0, false, nil
	}
	plen := int64(uint32(hdr[headerSize]) | uint32(hdr[headerSize+1])<<8 |
		uint32(hdr[headerSize+2])<<16 | uint32(hdr[headerSize+3])<<24)
	if plen > maxRecordLen {
		return 0, false, nil
	}
	frame := make([]byte, frameSize+plen)
	copy(frame, hdr[headerSize:])
	if _, err := io.ReadFull(f, frame[n-headerSize:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return 0, false, nil
		}
		return 0, false, err
	}
	p, err := ParseFrame(frame)
	if err != nil {
		return 0, false, nil // torn or mid-write first record: cannot anchor
	}
	return p.LSN(), true, nil
}

// Next blocks until the next record is durable and returns it. It returns
// io.EOF once the log has shut down and every durable record was yielded,
// ErrTailStopped when stop is closed, and ErrCompacted when a slow tail's
// next segment was pruned by compaction (the reader must re-bootstrap).
func (t *Tail) Next(stop <-chan struct{}) (Frame, error) {
	for {
		// Durability gate: the record about to be read is at or before
		// expect, so once expect is durable the bytes are final.
		for {
			durable, ch, live := t.l.durableState()
			if durable >= t.expect {
				break
			}
			if !live {
				if err := t.l.Err(); err != nil {
					return Frame{}, err
				}
				return Frame{}, io.EOF
			}
			select {
			case <-ch:
			case <-stop:
				return Frame{}, ErrTailStopped
			}
		}
		fr, err := t.readFrame()
		if err == errRetryLater {
			// Segment rotation in flight: the durable record exists but its
			// file is still being created. Rare and short-lived.
			select {
			case <-time.After(time.Millisecond):
			case <-stop:
				return Frame{}, ErrTailStopped
			}
			continue
		}
		if err != nil {
			return Frame{}, err
		}
		if fr.LSN < t.emitFrom {
			t.expect = fr.LSN + 1
			if t.expect < t.emitFrom {
				t.expect = t.emitFrom
			}
			continue
		}
		if fr.LSN != t.expect {
			return Frame{}, fmt.Errorf("wal: tail read LSN %d where %d was expected", fr.LSN, t.expect)
		}
		t.expect = fr.LSN + 1
		return fr, nil
	}
}

// errRetryLater signals a transient race (segment rotation mid-flight).
var errRetryLater = errors.New("wal: tail retry")

// readFrame reads the record at the cursor, advancing across segment
// boundaries. The caller has already established that the record is
// durable, so a malformed frame here is real corruption, not a torn tail.
func (t *Tail) readFrame() (Frame, error) {
	for {
		if t.f == nil {
			path := filepath.Join(t.l.dir, segName(t.seg.Load()))
			f, err := os.Open(path)
			if errors.Is(err, os.ErrNotExist) {
				// Either rotation is mid-flight (file about to appear) or a
				// compaction pruned the segment under a slow tail.
				if t.prunedAway() {
					return Frame{}, ErrCompacted
				}
				return Frame{}, errRetryLater
			}
			if err != nil {
				return Frame{}, err
			}
			var hdr [headerSize]byte
			if n, err := f.ReadAt(hdr[:], 0); n < headerSize {
				f.Close()
				if err == io.EOF || err == io.ErrUnexpectedEOF || err == nil {
					return Frame{}, errRetryLater // header still being written
				}
				return Frame{}, err
			}
			if string(hdr[:8]) != segMagic {
				f.Close()
				return Frame{}, fmt.Errorf("wal: %s: bad segment header", path)
			}
			t.f = f
			t.off.Store(headerSize)
		}
		off := t.off.Load()
		var fhdr [frameSize]byte
		n, err := t.f.ReadAt(fhdr[:], off)
		if n == 0 && err == io.EOF {
			// Exhausted at a record boundary: move on if a newer segment
			// exists (rotation fully flushes the old one first), otherwise
			// the durable record is still landing in this file.
			next := t.seg.Load() + 1
			if _, serr := os.Stat(filepath.Join(t.l.dir, segName(next))); serr == nil {
				t.f.Close()
				t.f = nil
				t.seg.Store(next)
				continue
			}
			return Frame{}, errRetryLater
		}
		if n < frameSize {
			if err == io.EOF {
				return Frame{}, errRetryLater
			}
			return Frame{}, err
		}
		plen := int64(uint32(fhdr[0]) | uint32(fhdr[1])<<8 | uint32(fhdr[2])<<16 | uint32(fhdr[3])<<24)
		if plen > maxRecordLen {
			return Frame{}, fmt.Errorf("wal: tail read implausible record length %d", plen)
		}
		frame := make([]byte, frameSize+plen)
		copy(frame, fhdr[:])
		if _, err := t.f.ReadAt(frame[frameSize:], off+frameSize); err != nil {
			if err == io.EOF {
				return Frame{}, errRetryLater
			}
			return Frame{}, err
		}
		p, err := ParseFrame(frame)
		if err != nil {
			return Frame{}, err
		}
		t.off.Store(off + int64(len(frame)))
		return Frame{LSN: p.LSN(), Data: frame}, nil
	}
}

// prunedAway reports whether the cursor segment is older than the oldest
// segment still on disk — i.e. compaction removed it.
func (t *Tail) prunedAway() bool {
	segs, _, err := scanDir(t.l.dir)
	if err != nil || len(segs) == 0 {
		return false
	}
	oldest := uint64(0)
	first := true
	for idx := range segs {
		if first || idx < oldest {
			oldest, first = idx, false
		}
	}
	return t.seg.Load() < oldest
}

// PendingBytes estimates how many logged bytes lie past the cursor — the
// replication backlog for this tail's follower. Safe to call from another
// goroutine while Next runs.
func (t *Tail) PendingBytes() int64 {
	segs, _, err := scanDir(t.l.dir)
	if err != nil {
		return 0
	}
	cur, off := t.seg.Load(), t.off.Load()
	var pending int64
	for idx, name := range segs {
		st, err := os.Stat(filepath.Join(t.l.dir, name))
		if err != nil {
			continue
		}
		switch {
		case idx == cur:
			if d := st.Size() - off; d > 0 {
				pending += d
			}
		case idx > cur:
			if d := st.Size() - headerSize; d > 0 {
				pending += d
			}
		}
	}
	return pending
}

// Close releases the tail's file handle. The tail must not be used after.
func (t *Tail) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// WriteBootstrapSnapshot seeds a fresh log directory with a snapshot at the
// given boundary, the way a replication follower bootstraps: Open then
// restores the snapshot and appends mirrored frames after it. The directory
// is created if needed; it must not already hold a log.
func WriteBootstrapSnapshot(dir string, boundary uint64, snapshot []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 || len(snaps) > 0 {
		return fmt.Errorf("wal: bootstrap into non-empty log directory %s", dir)
	}
	return writeSnapshot(dir, boundary, snapshot)
}
