// Package wal gives the document store durability: a segmented,
// CRC32C-checksummed write-ahead log with group commit, crash recovery,
// and log compaction.
//
// Every store mutation is appended as a typed record before the write is
// acknowledged. A committer goroutine batches concurrent writers into one
// write + fsync (group commit); SyncEvery/SyncInterval trade durability
// for throughput. Open replays the latest snapshot plus the live log,
// truncating a torn tail at the first bad record, so the recovered store
// always equals a prefix of the committed write history. Compact folds the
// live log into a fresh snapshot at a consistent cut and prunes old
// segments.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scooter/internal/obs"
	"scooter/internal/store"
)

// ErrClosed is returned for writes against a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options tunes the log. The zero value means: fsync every acknowledged
// write (batched across concurrent writers), 16 MiB segments, compaction
// once the live log passes 64 MiB.
type Options struct {
	// SyncEvery controls fsync batching:
	//
	//	1 (or 0, the default): every acknowledged write is fsynced before
	//	  its wait returns; concurrent writers share one fsync.
	//	N > 1: the committer fsyncs after N unsynced records or after
	//	  SyncInterval, whichever comes first; waits return once the
	//	  record reaches the OS, so a crash may lose the last window.
	//	< 0: fsync only on rotation, Sync, and Close.
	SyncEvery int
	// SyncInterval bounds how long a record stays unsynced when
	// SyncEvery > 1 (default 10ms).
	SyncInterval time.Duration
	// SegmentMaxBytes rotates to a new segment file once the current one
	// exceeds it (default 16 MiB).
	SegmentMaxBytes int64
	// CompactAfterBytes triggers automatic compaction once the live log
	// (segments newer than the last snapshot) exceeds it. Default 64 MiB;
	// negative disables automatic compaction.
	CompactAfterBytes int64
	// MaxBatchRecords caps how many records one group-commit flush
	// coalesces (default 1024; negative disables the cap). A bulk writer —
	// a migration backfill populating a whole collection, say — can
	// otherwise enqueue an unbounded batch that the committer turns into
	// one giant buffered write and fsync, blowing the batch-size
	// histogram's top bucket and spiking memory. Overflowing batches are
	// split into capped chunks and counted via Metrics.RecordBatchOverflow.
	MaxBatchRecords int
	// Metrics, when set, observes appends, physical writes, fsyncs,
	// group-commit batch sizes, compactions, and recovery. Nil is a no-op
	// sink.
	Metrics *obs.WALMetrics
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 10 * time.Millisecond
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 16 << 20
	}
	if o.CompactAfterBytes == 0 {
		o.CompactAfterBytes = 64 << 20
	}
	if o.MaxBatchRecords == 0 {
		o.MaxBatchRecords = 1024
	}
	return o
}

// strict reports whether waits require an fsync before returning.
func (o Options) strict() bool { return o.SyncEvery >= 0 && o.SyncEvery <= 1 }

// rotateMarker carries a compaction boundary through the commit queue: the
// committer rotates to a fresh segment when it reaches the marker and
// reports the new segment index back through seg.
type rotateMarker struct {
	lsn  uint64
	seg  uint64
	done chan struct{}
}

// queued is one entry in the commit queue: a framed record, or a rotation
// marker (frame nil).
type queued struct {
	frame  []byte
	lsn    uint64
	marker *rotateMarker
}

// Log is the write-ahead log attached to one store.DB. It implements
// store.Durability.
type Log struct {
	dir  string
	opts Options
	db   *store.DB

	// mu guards the commit queue and LSN/segment allocation.
	mu        sync.Mutex
	queue     []queued
	lastLSN   uint64
	nextSeg   uint64
	forceSync bool
	closed    bool

	// stateMu guards the watermarks waiters block on.
	stateMu    sync.Mutex
	stateCond  *sync.Cond
	writtenLSN uint64
	durableLSN uint64
	errState   error
	// durableCh is closed and replaced whenever durableLSN advances or the
	// log shuts down, so tailers can select on progress alongside their own
	// stop channels (a sync.Cond cannot be selected on).
	durableCh chan struct{}
	// finished is set once the committer has exited; tailers treat it as
	// end-of-stream once they have drained up to the final watermark.
	finished bool

	// committer-owned state.
	f            *os.File
	curSeg       uint64
	curSize      int64
	liveBytes    int64
	buf          []byte
	bufLSN       uint64
	unsyncedRecs int
	lastSync     time.Time

	replayed   int
	compacting atomic.Bool
	wake       chan struct{}
	done       chan struct{}
	wg         sync.WaitGroup
}

// DB returns the store this log is attached to.
func (l *Log) DB() *store.DB { return l.db }

// Replayed reports how many records Open replayed over the snapshot.
func (l *Log) Replayed() int { return l.replayed }

// Err returns the sticky error the log failed with, if any.
func (l *Log) Err() error {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.errState
}

// Append implements store.Durability. It is called under the mutated
// collection's lock: it serialises the record and enqueues it, deferring
// all I/O to the committer; the returned wait blocks until the record is
// durable (strict modes) or handed to the OS (relaxed modes).
func (l *Log) Append(m store.Mutation) store.WaitFunc {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return func() error { return ErrClosed }
	}
	frame, err := encodeMutation(l.lastLSN+1, m)
	if err != nil {
		l.mu.Unlock()
		l.fail(err)
		return func() error { return err }
	}
	l.lastLSN++
	lsn := l.lastLSN
	l.queue = append(l.queue, queued{frame: frame, lsn: lsn})
	l.mu.Unlock()
	l.opts.Metrics.RecordAppend()
	l.kick()
	strict := l.opts.strict()
	return func() error { return l.waitFor(lsn, strict) }
}

// AppendRaw appends a pre-framed record under an externally assigned LSN.
// Replication followers use it to mirror the primary's log record-for-
// record: frame must be a well-formed record frame whose payload LSN is
// lsn, and lsn must exceed every LSN appended so far (gaps are allowed —
// the first frame after a snapshot bootstrap anchors the sequence). The
// caller applies the record to the store itself; the store attached to a
// mirrored log must have no durability hook, or every record would be
// logged twice. Do not mix AppendRaw with store-driven Append on one log.
func (l *Log) AppendRaw(lsn uint64, frame []byte) store.WaitFunc {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return func() error { return ErrClosed }
	}
	if lsn <= l.lastLSN {
		last := l.lastLSN
		l.mu.Unlock()
		err := fmt.Errorf("wal: raw append of LSN %d at or below the log's last LSN %d", lsn, last)
		return func() error { return err }
	}
	l.lastLSN = lsn
	l.queue = append(l.queue, queued{frame: append([]byte(nil), frame...), lsn: lsn})
	l.mu.Unlock()
	l.opts.Metrics.RecordAppend()
	l.kick()
	strict := l.opts.strict()
	return func() error { return l.waitFor(lsn, strict) }
}

// Sync forces an fsync of everything appended so far and waits for it.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return l.Err()
	}
	lsn := l.lastLSN
	l.forceSync = true
	l.mu.Unlock()
	l.kick()
	return l.waitFor(lsn, true)
}

// Close drains the queue, fsyncs, and stops the committer. Writes after
// Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return l.Err()
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	return l.Err()
}

func (l *Log) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// waitFor blocks until the watermark covers lsn or the log fails.
func (l *Log) waitFor(lsn uint64, durable bool) error {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	for {
		if l.errState != nil {
			return l.errState
		}
		mark := l.writtenLSN
		if durable {
			mark = l.durableLSN
		}
		if mark >= lsn {
			return nil
		}
		l.stateCond.Wait()
	}
}

// fail records the first error and releases every waiter with it.
func (l *Log) fail(err error) {
	l.stateMu.Lock()
	if l.errState == nil {
		l.errState = err
	}
	l.notifyTailersLocked()
	l.stateCond.Broadcast()
	l.stateMu.Unlock()
}

// advance publishes new watermarks and wakes waiters.
func (l *Log) advance(written, durable uint64) {
	l.stateMu.Lock()
	if written > l.writtenLSN {
		l.writtenLSN = written
	}
	if durable > l.durableLSN {
		l.durableLSN = durable
		l.notifyTailersLocked()
	}
	l.stateCond.Broadcast()
	l.stateMu.Unlock()
}

// notifyTailersLocked wakes everyone selecting on the durable-progress
// channel; stateMu must be held.
func (l *Log) notifyTailersLocked() {
	close(l.durableCh)
	l.durableCh = make(chan struct{})
}

// markSynced raises the durable watermark to the written one after an
// fsync and wakes waiters and tailers.
func (l *Log) markSynced() {
	l.stateMu.Lock()
	if l.writtenLSN > l.durableLSN {
		l.durableLSN = l.writtenLSN
		l.notifyTailersLocked()
	}
	l.stateCond.Broadcast()
	l.stateMu.Unlock()
}

// DurableLSN reports the highest LSN known to be durable (fsynced, or — in
// relaxed modes — handed to the OS and later fsynced).
func (l *Log) DurableLSN() uint64 {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.durableLSN
}

// LastLSN reports the highest LSN allocated so far (appended, though not
// necessarily durable yet).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// durableState returns the current durable watermark, a channel closed on
// the next advance (or shutdown), and whether the log is still live.
func (l *Log) durableState() (lsn uint64, ch <-chan struct{}, live bool) {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.durableLSN, l.durableCh, !l.finished && l.errState == nil
}

// run is the committer: it drains the queue, coalesces records into one
// write, rotates segments, and applies the sync policy. One fsync commits
// every writer in the batch — the group in group commit.
func (l *Log) run() {
	defer l.wg.Done()
	var tick <-chan time.Time
	if l.opts.SyncEvery > 1 {
		t := time.NewTicker(l.opts.SyncInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-l.wake:
			l.coalesce()
			l.drainOnce(false)
		case <-tick:
			l.drainOnce(false)
		case <-l.done:
			for l.drainOnce(true) {
			}
			l.finalize()
			return
		}
	}
}

// coalesce widens the commit group before the fsync: the kick that woke
// the committer is delivered as soon as the first writer enqueues, so
// writers that are already runnable would otherwise land in the next
// group and pay a second fsync. Yield the processor until the queue stops
// growing (bounded, so an endless writer stream cannot starve the commit).
func (l *Log) coalesce() {
	prev := -1
	for i := 0; i < 4; i++ {
		l.mu.Lock()
		n := len(l.queue)
		l.mu.Unlock()
		if n == prev {
			return
		}
		prev = n
		runtime.Gosched()
	}
}

// drainOnce grabs the queue and commits it; it reports whether another
// pass might find more work (used by the shutdown drain).
func (l *Log) drainOnce(final bool) bool {
	l.mu.Lock()
	batch := l.queue
	l.queue = nil
	force := l.forceSync
	l.forceSync = false
	l.mu.Unlock()

	if l.Err() != nil {
		// The log already failed: discard, but release compactors blocked
		// on their markers.
		for _, q := range batch {
			if q.marker != nil {
				close(q.marker.done)
			}
		}
		return false
	}
	records := 0
	overflowed := false
	for _, q := range batch {
		if q.marker != nil {
			if records > 0 {
				l.opts.Metrics.ObserveBatch(records)
				records = 0
			}
			l.flush()
			l.processMarker(q.marker)
			continue
		}
		l.buf = append(l.buf, q.frame...)
		l.bufLSN = q.lsn
		l.unsyncedRecs++
		records++
		// Cap the flush unit: a bulk enqueue (whole-collection backfill)
		// is split into bounded chunks so the write buffer and the
		// batch-size histogram stay bounded.
		if l.opts.MaxBatchRecords > 0 && records >= l.opts.MaxBatchRecords {
			l.opts.Metrics.ObserveBatch(records)
			records = 0
			overflowed = true
			l.flush()
		}
	}
	if records > 0 {
		l.opts.Metrics.ObserveBatch(records)
	}
	if overflowed {
		l.opts.Metrics.RecordBatchOverflow()
	}
	l.flush()
	l.applySyncPolicy(force || final)
	if l.Err() == nil {
		l.maybeRotateBySize()
		l.maybeAutoCompact()
	}
	return len(batch) > 0
}

// flush writes buffered frames to the current segment.
func (l *Log) flush() {
	if len(l.buf) == 0 || l.Err() != nil {
		l.buf = l.buf[:0]
		return
	}
	n, err := l.f.Write(l.buf)
	l.curSize += int64(n)
	l.liveBytes += int64(n)
	l.opts.Metrics.RecordBytes(n)
	if err != nil {
		l.fail(fmt.Errorf("wal: writing segment %d: %w", l.curSeg, err))
		l.buf = l.buf[:0]
		return
	}
	l.advance(l.bufLSN, 0)
	l.buf = l.buf[:0]
}

// applySyncPolicy decides whether this batch ends in an fsync.
func (l *Log) applySyncPolicy(force bool) {
	if l.Err() != nil {
		return
	}
	need := false
	switch {
	case force:
		need = l.unsyncedRecs > 0 || l.durableBehind()
	case l.opts.strict():
		need = l.durableBehind()
	case l.opts.SyncEvery > 1:
		need = l.unsyncedRecs >= l.opts.SyncEvery ||
			(l.unsyncedRecs > 0 && time.Since(l.lastSync) >= l.opts.SyncInterval)
	}
	if !need {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync segment %d: %w", l.curSeg, err))
		return
	}
	l.opts.Metrics.RecordFsync()
	l.unsyncedRecs = 0
	l.lastSync = time.Now()
	l.markSynced()
}

func (l *Log) durableBehind() bool {
	l.stateMu.Lock()
	defer l.stateMu.Unlock()
	return l.writtenLSN > l.durableLSN
}

// processMarker rotates to a fresh segment at a compaction boundary and
// writes the checkpoint record that opens it.
func (l *Log) processMarker(m *rotateMarker) {
	defer close(m.done)
	if l.Err() != nil {
		return
	}
	l.mu.Lock()
	l.nextSeg++
	seg := l.nextSeg
	l.mu.Unlock()
	if !l.rotateTo(seg) {
		return
	}
	l.liveBytes = 0
	frame, err := encodeCheckpoint(m.lsn, seg)
	if err != nil {
		l.fail(err)
		return
	}
	l.buf = append(l.buf, frame...)
	l.bufLSN = m.lsn
	l.unsyncedRecs++
	l.flush()
	m.seg = seg
}

// rotateTo syncs and closes the current segment and starts a new one; it
// reports success.
func (l *Log) rotateTo(seg uint64) bool {
	if err := l.f.Sync(); err != nil {
		l.fail(fmt.Errorf("wal: fsync segment %d: %w", l.curSeg, err))
		return false
	}
	l.opts.Metrics.RecordFsync()
	l.markSynced()
	l.unsyncedRecs = 0
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return false
	}
	f, err := createSegment(l.dir, seg)
	if err != nil {
		l.fail(err)
		return false
	}
	l.f = f
	l.curSeg = seg
	l.curSize = headerSize
	return true
}

// maybeRotateBySize starts a new segment when the current one is full.
func (l *Log) maybeRotateBySize() {
	if l.curSize < l.opts.SegmentMaxBytes {
		return
	}
	l.mu.Lock()
	l.nextSeg++
	seg := l.nextSeg
	l.mu.Unlock()
	l.rotateTo(seg)
}

// maybeAutoCompact folds the live log into a snapshot once it passes the
// configured threshold. Compaction runs beside the committer; errors are
// not fatal to the log (the uncompacted log remains valid).
func (l *Log) maybeAutoCompact() {
	if l.opts.CompactAfterBytes < 0 || l.liveBytes < l.opts.CompactAfterBytes || l.compacting.Load() {
		return
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		_ = l.Compact()
	}()
}

// finalize runs at committer exit: everything is on disk and fsynced, so
// pending waiters drain.
func (l *Log) finalize() {
	if l.Err() == nil {
		if err := l.f.Sync(); err != nil {
			l.fail(err)
		} else {
			l.opts.Metrics.RecordFsync()
		}
	}
	_ = l.f.Close()
	l.stateMu.Lock()
	if l.errState == nil && l.writtenLSN > l.durableLSN {
		l.durableLSN = l.writtenLSN
	}
	l.finished = true
	l.notifyTailersLocked()
	l.stateCond.Broadcast()
	l.stateMu.Unlock()
	// Release any compactor whose marker never reached the committer and
	// fail writers that enqueued after the final drain (none should
	// exist, but a stuck waiter would be worse than a spurious error).
	l.mu.Lock()
	rest := l.queue
	l.queue = nil
	l.mu.Unlock()
	if len(rest) > 0 {
		l.fail(ErrClosed)
		for _, q := range rest {
			if q.marker != nil {
				close(q.marker.done)
			}
		}
	}
}

// Compact folds the live log into a fresh snapshot: it captures a
// consistent cut of the store, rotates the log to a new segment exactly at
// that cut, writes the snapshot atomically, and prunes the segments the
// snapshot covers. Concurrent writes keep flowing; only the cut itself
// briefly holds the store's locks.
func (l *Log) Compact() error {
	if !l.compacting.CompareAndSwap(false, true) {
		return nil // a compaction is already running
	}
	defer l.compacting.Store(false)
	if err := l.Err(); err != nil {
		return err
	}

	marker := &rotateMarker{done: make(chan struct{})}
	enqueued := false
	var snap bytes.Buffer
	err := l.db.SnapshotCut(&snap, func() {
		l.mu.Lock()
		if !l.closed {
			l.lastLSN++
			marker.lsn = l.lastLSN
			l.queue = append(l.queue, queued{lsn: marker.lsn, marker: marker})
			enqueued = true
		}
		l.mu.Unlock()
	})
	if err != nil {
		return err
	}
	if !enqueued {
		return ErrClosed
	}
	l.kick()
	<-marker.done
	if err := l.Err(); err != nil {
		return err
	}
	if marker.seg == 0 {
		return fmt.Errorf("wal: compaction boundary rotation did not complete")
	}
	// Everything before the marker lives in segments below the boundary;
	// rotation fsynced them, so the snapshot never outruns the log.
	if marker.lsn > 0 {
		if err := l.waitFor(marker.lsn-1, true); err != nil {
			return err
		}
	}
	if err := writeSnapshot(l.dir, marker.seg, snap.Bytes()); err != nil {
		return err
	}
	pruneBelow(l.dir, marker.seg)
	l.opts.Metrics.RecordCompaction()
	return nil
}

// writeSnapshot persists a snapshot atomically: write to a temp file,
// fsync, rename into place, fsync the directory.
func writeSnapshot(dir string, boundary uint64, data []byte) error {
	final := filepath.Join(dir, snapName(boundary))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// pruneBelow removes segments and snapshots older than the boundary.
// Best-effort: leftovers are ignored (and cleaned on the next Open).
func pruneBelow(dir string, boundary uint64) {
	segs, snaps, _ := scanDir(dir)
	for seg, name := range segs {
		if seg < boundary {
			os.Remove(filepath.Join(dir, name))
		}
	}
	for snap, name := range snaps {
		if snap < boundary {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

func segName(i uint64) string  { return fmt.Sprintf("wal-%08d.log", i) }
func snapName(i uint64) string { return fmt.Sprintf("snap-%08d.json", i) }

// SegmentName returns the file name of segment i, for tools and tests that
// inspect a log directory.
func SegmentName(i uint64) string { return segName(i) }

// createSegment makes a fresh segment file with its header on disk.
func createSegment(dir string, seg uint64) (*os.File, error) {
	path := filepath.Join(dir, segName(seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(segmentHeader(seg)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
