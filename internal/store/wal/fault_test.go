package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"scooter/internal/store"
)

// faultOp is one deterministic single-record mutation, as in cmd/walfault:
// one op = one WAL record, so recovery from any damage must land exactly on
// an op-count prefix.
type faultOp func(db *store.DB)

func faultWorkload(n int) []faultOp {
	ops := []faultOp{
		func(db *store.DB) { db.Collection("users") },
		func(db *store.DB) { db.Collection("users").EnsureIndex("name") },
	}
	var ids []store.ID
	for i := 0; len(ops) < n; i++ {
		i := i
		switch {
		case i%5 == 3 && len(ids) > 1:
			id := ids[i%len(ids)]
			ops = append(ops, func(db *store.DB) {
				db.Collection("users").Update(id, store.Doc{"age": int64(i), "opt": store.Some(int64(i))})
			})
		case i%7 == 5 && len(ids) > 3:
			id := ids[0]
			ids = ids[1:]
			ops = append(ops, func(db *store.DB) { db.Collection("users").Delete(id) })
		default:
			ids = append(ids, store.ID(int64(len(ids)+2)))
			ops = append(ops, func(db *store.DB) {
				db.Collection("users").Insert(store.Doc{
					"name": fmt.Sprintf("u%d", i),
					"tags": []store.Value{"a", int64(i)}, "extra": store.None(),
				})
			})
		}
	}
	return ops[:n]
}

// TestFaultInjectionSweep damages a small log at every byte offset — both a
// torn write (truncation) and a bit flip — and checks that recovery always
// succeeds, never panics, and always yields the state after some committed
// prefix of the workload. cmd/walfault runs the same sweep at a larger
// scale in CI.
func TestFaultInjectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is slow; run without -short")
	}
	const nOps = 18
	ops := faultWorkload(nOps)

	// Small segments so the sweep crosses rotation boundaries and later
	// segment headers, not just record frames.
	walOpts := Options{SegmentMaxBytes: 512, CompactAfterBytes: -1}
	pristine := t.TempDir()
	l, db, err := Open(pristine, walOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ops {
		f(db)
	}
	if err := db.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	mustClose(t, l)

	prefixes := map[string]int{}
	for k := 0; k <= nOps; k++ {
		fresh := store.Open()
		for _, f := range ops[:k] {
			f(fresh)
		}
		prefixes[string(snapshotBytes(t, fresh))] = k
	}

	entries, err := os.ReadDir(pristine)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Fatalf("workload produced %d segments; want >= 2 so faults hit rotation boundaries", len(segs))
	}

	trials, replayed := 0, 0
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(pristine, seg))
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off++ {
			for _, truncate := range []bool{true, false} {
				damaged := data[:off:off]
				if !truncate {
					damaged = append([]byte(nil), data...)
					damaged[off] ^= 0xFF
				}
				trial := t.TempDir()
				if err := os.CopyFS(trial, os.DirFS(pristine)); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(trial, seg), damaged, 0o644); err != nil {
					t.Fatal(err)
				}
				l, db, err := Open(trial, walOpts)
				if err != nil {
					t.Fatalf("%s+%d truncate=%v: recovery failed: %v", seg, off, truncate, err)
				}
				snap := snapshotBytes(t, db)
				if _, ok := prefixes[string(snap)]; !ok {
					t.Fatalf("%s+%d truncate=%v: recovered state is not a committed prefix", seg, off, truncate)
				}
				replayed += l.Replayed()
				mustClose(t, l)
				trials++
			}
		}
	}
	t.Logf("fault trials: %d, replayed records: %d", trials, replayed)
	if replayed == 0 {
		t.Fatal("sweep never replayed a record; workload too small to be meaningful")
	}
}

// TestRecoveryAfterTornWriteAppends checks the log stays usable after a
// torn-tail truncation: recover, append more records, reopen, and see both
// the surviving prefix and the new writes.
func TestRecoveryAfterTornWriteAppends(t *testing.T) {
	dir := t.TempDir()
	l, db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	users := db.Collection("users")
	for i := 0; i < 5; i++ {
		users.Insert(store.Doc{"n": int64(i)})
	}
	mustClose(t, l)

	// Tear the last record: chop 3 bytes off the single segment.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l, db, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	users = db.Collection("users")
	if got := users.Len(); got != 4 {
		t.Fatalf("after torn write: %d users, want 4", got)
	}
	users.Insert(store.Doc{"n": int64(99)})
	if err := db.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, db)
	mustClose(t, l)

	l, db, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, l)
	if !bytes.Equal(want, snapshotBytes(t, db)) {
		t.Fatal("state after append-past-torn-tail did not survive reopen")
	}
}
