package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"scooter/internal/store"
)

// Open recovers a database from dir and returns the attached log. It
// restores the newest snapshot, replays the live segments over it in LSN
// order, and truncates the torn tail at the first bad record — a short or
// corrupt frame, an LSN gap, or a record the store rejects. The result is
// always the state after some prefix of the committed history, never a
// partially applied record. Every later mutation of the returned DB is
// logged before it is acknowledged.
func Open(dir string, opts Options) (*Log, *store.DB, error) {
	opts = opts.withDefaults()
	recoveryStart := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	// Restore the newest snapshot, if any. Snapshots are written atomically
	// (tmp + fsync + rename), so a present snapshot is complete; one that
	// fails to parse is real damage and recovery stops rather than silently
	// reviving older state.
	var boundary uint64
	var db *store.DB
	if len(snaps) > 0 {
		for idx := range snaps {
			if idx > boundary {
				boundary = idx
			}
		}
		f, err := os.Open(filepath.Join(dir, snaps[boundary]))
		if err != nil {
			return nil, nil, err
		}
		db, err = store.Restore(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("wal: snapshot %s: %w", snaps[boundary], err)
		}
	} else {
		db = store.Open()
	}

	// The replayable segments are the contiguous run starting at the
	// snapshot boundary (compaction creates segment K together with
	// snapshot K). A gap means the later segments are orphans.
	var replay []uint64
	for idx := range segs {
		if idx >= boundary {
			replay = append(replay, idx)
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i] < replay[j] })
	run := replay[:0]
	for i, idx := range replay {
		if i > 0 && idx != replay[i-1]+1 {
			break
		}
		run = append(run, idx)
	}
	orphans := replay[len(run):]

	var (
		lastLSN   uint64
		replayed  int
		torn      bool
		curSeg    uint64
		liveBytes int64
	)
	for segIdx, seg := range run {
		path := filepath.Join(dir, segName(seg))
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		scan := parseSegment(buf, seg)
		keep := scan.good
		bad := !scan.ok
		for i, rec := range scan.recs {
			// LSNs are contiguous across the whole run. Only the run's
			// first segment may anchor the sequence (its first LSN depends
			// on the history the snapshot absorbed); from then on, any gap
			// means records were lost — e.g. an earlier segment damaged
			// down to a "valid" empty file — and replaying further would
			// apply a suffix without its prefix. Treat the gap as the torn
			// point.
			if (lastLSN != 0 || segIdx > 0) && rec.LSN != lastLSN+1 {
				bad = true
				keep = recStart(scan, i)
				break
			}
			if err := applyRecord(db, rec); err != nil {
				// A record the recovered state rejects is corruption in
				// record terms even if its bytes checksum: keep the prefix.
				bad = true
				keep = recStart(scan, i)
				break
			}
			lastLSN = rec.LSN
			replayed++
			liveBytes += recStart(scan, i+1) - recStart(scan, i)
		}
		curSeg = seg
		if bad {
			torn = true
			if !scan.headerOK {
				if err := os.Remove(path); err != nil {
					return nil, nil, err
				}
				f, err := createSegment(dir, seg)
				if err != nil {
					return nil, nil, err
				}
				f.Close()
			} else if err := truncateSegment(path, keep); err != nil {
				return nil, nil, err
			}
			break
		}
	}
	if torn {
		for idx, name := range segs {
			if idx > curSeg {
				os.Remove(filepath.Join(dir, name))
			}
		}
	} else {
		for _, idx := range orphans {
			os.Remove(filepath.Join(dir, segs[idx]))
		}
	}
	// Segments and snapshots below the boundary are covered by the
	// snapshot; a crash mid-prune leaves them behind, so finish the job.
	pruneBelow(dir, boundary)

	if curSeg == 0 {
		// Fresh directory (or a snapshot with no live segment): start a
		// new segment at the boundary.
		curSeg = boundary
		if curSeg == 0 {
			curSeg = 1
		}
		f, err := createSegment(dir, curSeg)
		if err != nil {
			return nil, nil, err
		}
		f.Close()
	}

	path := filepath.Join(dir, segName(curSeg))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}

	l := &Log{
		dir:       dir,
		opts:      opts,
		db:        db,
		lastLSN:   lastLSN,
		nextSeg:   curSeg,
		f:         f,
		curSeg:    curSeg,
		curSize:   st.Size(),
		liveBytes: liveBytes,
		lastSync:  time.Now(),
		replayed:  replayed,
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	l.stateCond = sync.NewCond(&l.stateMu)
	l.durableCh = make(chan struct{})
	l.writtenLSN = lastLSN
	l.durableLSN = lastLSN
	db.SetDurability(l)
	opts.Metrics.RecordRecovery(time.Since(recoveryStart).Seconds(), replayed)
	l.wg.Add(1)
	go l.run()
	return l, db, nil
}

// recStart returns the byte offset where record i begins (or where record
// i would begin, for i == len(recs)).
func recStart(s segScan, i int) int64 {
	if i == 0 {
		return headerSize
	}
	return s.ends[i-1]
}

// applyRecord replays one WAL record into the store. The store has no
// durability attached during replay, so nothing is re-logged.
func applyRecord(db *store.DB, rec record) error {
	switch rec.Op {
	case opInsert:
		doc, err := store.UnmarshalDoc(rec.Doc)
		if err != nil {
			return err
		}
		if err := db.Collection(rec.Coll).InsertWithID(store.ID(rec.ID), doc); err != nil {
			return err
		}
		db.AdvanceNextID(store.ID(rec.ID))
		return nil
	case opUpdate:
		doc, err := store.UnmarshalDoc(rec.Doc)
		if err != nil {
			return err
		}
		return db.Collection(rec.Coll).Update(store.ID(rec.ID), doc)
	case opDelete:
		if !db.Collection(rec.Coll).Delete(store.ID(rec.ID)) {
			return fmt.Errorf("wal: delete of missing %s/%d", rec.Coll, rec.ID)
		}
		return nil
	case opRemField:
		db.Collection(rec.Coll).RemoveField(rec.Field)
		return nil
	case opCreateColl:
		db.Collection(rec.Coll)
		return nil
	case opDropColl:
		db.DropCollection(rec.Coll)
		return nil
	case opIndex:
		db.Collection(rec.Coll).EnsureIndex(rec.Field)
		return nil
	case opCheckpoint:
		return nil // boundary marker; the snapshot choice already used it
	default:
		return fmt.Errorf("wal: unknown op %q", rec.Op)
	}
}

// truncateSegment cuts a torn tail off a segment and makes the cut durable.
func truncateSegment(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// scanDir lists segment and snapshot files by index. Leftover temp files
// from an interrupted snapshot write are removed.
func scanDir(dir string) (segs, snaps map[uint64]string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	segs = map[uint64]string{}
	snaps = map[uint64]string{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var idx uint64
		if n, _ := fmt.Sscanf(name, "wal-%d.log", &idx); n == 1 && name == segName(idx) {
			segs[idx] = name
			continue
		}
		if n, _ := fmt.Sscanf(name, "snap-%d.json", &idx); n == 1 && name == snapName(idx) {
			snaps[idx] = name
		}
	}
	return segs, snaps, nil
}
