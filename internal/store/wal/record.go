package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"scooter/internal/store"
)

// On-disk layout. Each segment starts with a 16-byte header:
//
//	[8B magic "SCWAL001"][8B little-endian segment index]
//
// followed by framed records:
//
//	[4B little-endian payload length][4B CRC32C(payload)][payload]
//
// The payload is a JSON record (typed-tagged document values, shared with
// the snapshot codec). A record whose frame is short, whose length is
// implausible, or whose checksum fails marks the torn tail: recovery
// truncates there and replays nothing after it.

const (
	segMagic     = "SCWAL001"
	headerSize   = 16
	frameSize    = 8
	maxRecordLen = 64 << 20 // sanity bound on a single record
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record op codes, kept short because they appear in every payload.
const (
	opInsert     = "ins"
	opUpdate     = "upd"
	opDelete     = "del"
	opRemField   = "rmf"
	opCreateColl = "mkc"
	opDropColl   = "drc"
	opIndex      = "idx"
	opCheckpoint = "ckp"
)

// record is the JSON payload of one WAL entry. LSNs are assigned
// contiguously, so recovery can detect a gap (dropped record) as
// corruption.
type record struct {
	LSN   uint64          `json:"l"`
	Op    string          `json:"o"`
	Coll  string          `json:"c,omitempty"`
	ID    int64           `json:"i,omitempty"`
	Doc   json.RawMessage `json:"d,omitempty"`
	Field string          `json:"f,omitempty"`
	// Snap marks a checkpoint: a snapshot covering every record before
	// this one exists under the segment index Snap.
	Snap uint64 `json:"s,omitempty"`
}

// encodeMutation renders a store mutation as a framed record. It runs
// synchronously inside Durability.Append (under the collection lock), so
// the Doc may alias caller memory.
func encodeMutation(lsn uint64, m store.Mutation) ([]byte, error) {
	rec := record{LSN: lsn, Coll: m.Coll, ID: int64(m.ID), Field: m.Field}
	switch m.Op {
	case store.MutInsert:
		rec.Op = opInsert
	case store.MutUpdate:
		rec.Op = opUpdate
	case store.MutDelete:
		rec.Op = opDelete
	case store.MutRemoveField:
		rec.Op = opRemField
	case store.MutCreateCollection:
		rec.Op = opCreateColl
	case store.MutDropCollection:
		rec.Op = opDropColl
	case store.MutCreateIndex:
		rec.Op = opIndex
	default:
		return nil, fmt.Errorf("wal: unknown mutation op %d", m.Op)
	}
	if m.Op == store.MutInsert || m.Op == store.MutUpdate {
		doc, err := store.MarshalDoc(m.Doc)
		if err != nil {
			return nil, fmt.Errorf("wal: encoding %s/%v: %w", m.Coll, m.ID, err)
		}
		rec.Doc = doc
	}
	return frameRecord(rec)
}

// encodeCheckpoint renders a checkpoint record for a compaction boundary.
func encodeCheckpoint(lsn, boundary uint64) ([]byte, error) {
	return frameRecord(record{LSN: lsn, Op: opCheckpoint, Snap: boundary})
}

// frameRecord wraps a record payload in the length+CRC frame.
func frameRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	out := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[frameSize:], payload)
	return out, nil
}

// segmentHeader renders the 16-byte header of a segment file.
func segmentHeader(seg uint64) []byte {
	h := make([]byte, headerSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint64(h[8:], seg)
	return h
}

// ParsedFrame is one decoded record frame, as shipped between replication
// peers. Parsing and applying are split so a follower can validate a frame
// and learn its LSN before mirroring the bytes into its own log, then apply
// the record to its store without re-decoding.
type ParsedFrame struct {
	lsn  uint64
	data []byte
	rec  record
}

// LSN returns the record's log sequence number.
func (p *ParsedFrame) LSN() uint64 { return p.lsn }

// Data returns the frame bytes exactly as framed on disk and on the wire.
func (p *ParsedFrame) Data() []byte { return p.data }

// IsCheckpoint reports whether the record is a compaction checkpoint (a
// boundary marker that mutates nothing).
func (p *ParsedFrame) IsCheckpoint() bool { return p.rec.Op == opCheckpoint }

// Apply replays the record into db. The database must have no durability
// hook attached when the caller mirrors frames itself.
func (p *ParsedFrame) Apply(db *store.DB) error { return applyRecord(db, p.rec) }

// ParseFrame validates one framed record — length, checksum, payload — and
// returns its decoded form. It rejects trailing bytes: a frame is exactly
// one record.
func ParseFrame(frame []byte) (*ParsedFrame, error) {
	if len(frame) < frameSize {
		return nil, fmt.Errorf("wal: frame shorter than its header (%d bytes)", len(frame))
	}
	n := int64(binary.LittleEndian.Uint32(frame[0:4]))
	if n > maxRecordLen || frameSize+n != int64(len(frame)) {
		return nil, fmt.Errorf("wal: frame length %d does not match payload (%d bytes)", n, len(frame)-frameSize)
	}
	payload := frame[frameSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:8]) {
		return nil, fmt.Errorf("wal: frame checksum mismatch")
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("wal: frame payload: %w", err)
	}
	return &ParsedFrame{lsn: rec.LSN, data: frame, rec: rec}, nil
}

// segScan is the result of parsing one segment file.
type segScan struct {
	recs []record
	ends []int64 // ends[i]: byte offset just past recs[i]
	good int64   // offset just past the last well-formed record
	ok   bool    // whole file consumed without a torn tail
	// headerOK is false when the file lacks a valid header for its index;
	// nothing in it is recoverable.
	headerOK bool
}

// parseSegment reads the records of one segment from buf (the whole file).
// A record whose frame is short, whose length is implausible, whose
// checksum fails, or whose payload does not parse marks the torn tail:
// everything before it is returned and ok is false. Recovery truncates at
// good and never fails or panics on a torn tail.
func parseSegment(buf []byte, seg uint64) segScan {
	if len(buf) < headerSize || string(buf[:8]) != segMagic ||
		binary.LittleEndian.Uint64(buf[8:16]) != seg {
		return segScan{}
	}
	s := segScan{good: headerSize, headerOK: true}
	off := int64(headerSize)
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			s.ok = true
			return s
		}
		if len(rest) < frameSize {
			return s
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxRecordLen || frameSize+n > int64(len(rest)) {
			return s
		}
		payload := rest[frameSize : frameSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return s
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return s
		}
		off += frameSize + n
		s.recs = append(s.recs, rec)
		s.ends = append(s.ends, off)
		s.good = off
	}
}
