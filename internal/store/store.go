// Package store is an in-memory, concurrency-safe document database — the
// substrate beneath the Scooter ORM. The paper's implementation uses a
// MongoDB driver; this store exposes the same primitives the ORM needs
// (collections of documents, filter queries, field updates, inserts and
// deletes) so the policy-enforcement code path is exercised identically.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ID is a document identifier, unique per database.
type ID int64

// Nil is the zero ID.
const Nil ID = 0

func (id ID) String() string { return fmt.Sprintf("#%d", int64(id)) }

// Value is a document field value: one of int64, float64, bool, string,
// ID, []Value (sets), Optional, or nil.
type Value any

// Optional wraps an optional field value: Present false models None.
type Optional struct {
	Present bool
	Value   Value
}

// Some returns a present Optional.
func Some(v Value) Optional { return Optional{Present: true, Value: v} }

// None returns an absent Optional.
func None() Optional { return Optional{} }

// Doc is a single document: field name to value. The "id" field is
// maintained by the store.
type Doc map[string]Value

// Clone returns a deep copy of the document.
func (d Doc) Clone() Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v Value) Value {
	switch x := v.(type) {
	case []Value:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	case Optional:
		return Optional{Present: x.Present, Value: cloneValue(x.Value)}
	default:
		return v
	}
}

// ID returns the document's id.
func (d Doc) ID() ID {
	if id, ok := d["id"].(ID); ok {
		return id
	}
	return Nil
}

// FilterOp is a query operator.
type FilterOp int

// Query operators, mirroring Scooter's Find operators.
const (
	FilterEq FilterOp = iota
	FilterLt
	FilterLe
	FilterGt
	FilterGe
	FilterContains // set field contains value
)

// Filter is one query criterion.
type Filter struct {
	Field string
	Op    FilterOp
	Value Value
}

// Eq builds an equality filter.
func Eq(field string, v Value) Filter { return Filter{Field: field, Op: FilterEq, Value: v} }

// Collection is a named set of documents.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    map[ID]Doc
	db      *DB
	indexes map[string]*fieldIndex
}

// DB is an in-memory database: named collections plus an id allocator.
type DB struct {
	mu     sync.RWMutex
	colls  map[string]*Collection
	nextID atomic.Int64
}

// Open returns an empty database.
func Open() *DB {
	db := &DB{colls: map[string]*Collection{}}
	db.nextID.Store(1)
	return db
}

// Collection returns (creating if needed) the named collection.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.colls[name]; ok {
		return c
	}
	c := &Collection{name: name, docs: map[ID]Doc{}, db: db}
	db.colls[name] = c
	return c
}

// DropCollection removes a collection and its documents.
func (db *DB) DropCollection(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.colls, name)
}

// CollectionNames lists collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewID allocates a fresh document id.
func (db *DB) NewID() ID { return ID(db.nextID.Add(1)) }

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Insert stores a copy of doc, assigning a fresh id, and returns the id.
func (c *Collection) Insert(doc Doc) ID {
	id := c.db.NewID()
	cp := doc.Clone()
	cp["id"] = id
	c.mu.Lock()
	c.docs[id] = cp
	c.indexAdd(id, cp)
	c.mu.Unlock()
	return id
}

// InsertWithID stores a copy of doc under an explicit id; it fails if the
// id is taken.
func (c *Collection) InsertWithID(id ID, doc Doc) error {
	cp := doc.Clone()
	cp["id"] = id
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[id]; exists {
		return fmt.Errorf("store: id %v already exists in %s", id, c.name)
	}
	c.docs[id] = cp
	c.indexAdd(id, cp)
	return nil
}

// Get returns a copy of the document with the given id.
func (c *Collection) Get(id ID) (Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Find returns copies of all documents matching every filter, in id order.
// Equality filters on indexed fields probe the index instead of scanning.
func (c *Collection) Find(filters ...Filter) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Doc
	if ids, ok := c.indexProbe(filters); ok {
		for _, id := range ids {
			d := c.docs[id]
			if d != nil && matchAll(d, filters) {
				out = append(out, d.Clone())
			}
		}
	} else {
		for _, d := range c.docs {
			if matchAll(d, filters) {
				out = append(out, d.Clone())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Count returns the number of documents matching every filter.
func (c *Collection) Count(filters ...Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	if ids, ok := c.indexProbe(filters); ok {
		for _, id := range ids {
			if d := c.docs[id]; d != nil && matchAll(d, filters) {
				n++
			}
		}
		return n
	}
	for _, d := range c.docs {
		if matchAll(d, filters) {
			n++
		}
	}
	return n
}

// Update overwrites the given fields of the document with id. It fails if
// the document does not exist.
func (c *Collection) Update(id ID, fields Doc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return fmt.Errorf("store: no document %v in %s", id, c.name)
	}
	c.indexRemove(id, d)
	for k, v := range fields {
		if k == "id" {
			continue // ids are immutable
		}
		d[k] = cloneValue(v)
	}
	c.indexAdd(id, d)
	return nil
}

// UpdateAll applies an updater function to every document matching the
// filters; the updater returns the fields to overwrite (nil for no change).
// It returns the number of updated documents. Used by migrations to
// populate new fields.
func (c *Collection) UpdateAll(filters []Filter, update func(Doc) Doc) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.docs {
		if !matchAll(d, filters) {
			continue
		}
		fields := update(d.Clone())
		if fields == nil {
			continue
		}
		c.indexRemove(d.ID(), d)
		for k, v := range fields {
			if k == "id" {
				continue
			}
			d[k] = cloneValue(v)
		}
		c.indexAdd(d.ID(), d)
		n++
	}
	return n
}

// RemoveField deletes a field from every document (schema migration).
func (c *Collection) RemoveField(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, d := range c.docs {
		c.indexRemove(id, d)
		delete(d, field)
		c.indexAdd(id, d)
	}
}

// Delete removes the document with the given id, reporting whether it
// existed.
func (c *Collection) Delete(id ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[id]
	if !ok {
		return false
	}
	c.indexRemove(id, d)
	delete(c.docs, id)
	return true
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

func matchAll(d Doc, filters []Filter) bool {
	for _, f := range filters {
		if !match(d, f) {
			return false
		}
	}
	return true
}

func match(d Doc, f Filter) bool {
	v, ok := d[f.Field]
	if !ok {
		return false
	}
	switch f.Op {
	case FilterEq:
		return valueEq(v, f.Value)
	case FilterContains:
		set, ok := v.([]Value)
		if !ok {
			return false
		}
		for _, e := range set {
			if valueEq(e, f.Value) {
				return true
			}
		}
		return false
	default:
		c, ok := compareValues(v, f.Value)
		if !ok {
			return false
		}
		switch f.Op {
		case FilterLt:
			return c < 0
		case FilterLe:
			return c <= 0
		case FilterGt:
			return c > 0
		case FilterGe:
			return c >= 0
		}
	}
	return false
}

func valueEq(a, b Value) bool {
	if oa, ok := a.(Optional); ok {
		ob, ok := b.(Optional)
		if !ok {
			return false
		}
		if oa.Present != ob.Present {
			return false
		}
		return !oa.Present || valueEq(oa.Value, ob.Value)
	}
	if c, ok := compareValues(a, b); ok {
		return c == 0
	}
	switch x := a.(type) {
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case ID:
		y, ok := b.(ID)
		return ok && x == y
	}
	return false
}

// compareValues orders two numeric values; ok is false for non-numerics.
func compareValues(a, b Value) (int, bool) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return 0, false
	}
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	default:
		return 0, true
	}
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case int:
		return float64(x), true
	}
	return 0, false
}

// Match reports whether a single document satisfies the filter; exported
// for the policy evaluator, which checks principals' own documents against
// Find criteria without scanning collections.
func Match(d Doc, f Filter) bool { return match(d, f) }

// MatchAll reports whether the document satisfies every filter.
func MatchAll(d Doc, filters []Filter) bool { return matchAll(d, filters) }

// Peek calls fn with the live document under the collection lock, avoiding
// the defensive copy Get makes; fn must not retain or mutate the document.
// It reports whether the document exists. The policy evaluator uses this on
// its hot path: every ORM operation evaluates policies that probe the
// principal's own document against Find criteria.
func (c *Collection) Peek(id ID, fn func(Doc)) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return false
	}
	fn(d)
	return true
}
