// Package store is an in-memory, concurrency-safe document database — the
// substrate beneath the Scooter ORM. The paper's implementation uses a
// MongoDB driver; this store exposes the same primitives the ORM needs
// (collections of documents, filter queries, field updates, inserts and
// deletes) so the policy-enforcement code path is exercised identically.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ID is a document identifier, unique per database.
type ID int64

// Nil is the zero ID.
const Nil ID = 0

func (id ID) String() string { return fmt.Sprintf("#%d", int64(id)) }

// Value is a document field value: one of int64, float64, bool, string,
// ID, []Value (sets), Optional, or nil.
type Value any

// Optional wraps an optional field value: Present false models None.
type Optional struct {
	Present bool
	Value   Value
}

// Some returns a present Optional.
func Some(v Value) Optional { return Optional{Present: true, Value: v} }

// None returns an absent Optional.
func None() Optional { return Optional{} }

// Doc is a single document: field name to value. The "id" field is
// maintained by the store.
type Doc map[string]Value

// Clone returns a deep copy of the document.
func (d Doc) Clone() Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v Value) Value {
	switch x := v.(type) {
	case []Value:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	case Optional:
		return Optional{Present: x.Present, Value: cloneValue(x.Value)}
	default:
		return v
	}
}

// ID returns the document's id.
func (d Doc) ID() ID {
	if id, ok := d["id"].(ID); ok {
		return id
	}
	return Nil
}

// FilterOp is a query operator.
type FilterOp int

// Query operators, mirroring Scooter's Find operators.
const (
	FilterEq FilterOp = iota
	FilterLt
	FilterLe
	FilterGt
	FilterGe
	FilterContains // set field contains value
)

// Filter is one query criterion.
type Filter struct {
	Field string
	Op    FilterOp
	Value Value
}

// Eq builds an equality filter.
func Eq(field string, v Value) Filter { return Filter{Field: field, Op: FilterEq, Value: v} }

// Collection is a named set of documents.
type Collection struct {
	mu      sync.RWMutex
	name    string
	docs    map[ID]Doc
	db      *DB
	indexes map[string]*fieldIndex
	dropped atomic.Bool
}

// Dropped reports whether the collection has been removed from its
// database. Callers holding a *Collection across operations (e.g. the
// policy compiler's per-site inline caches) use this to detect staleness:
// a dropped name re-created later yields a fresh *Collection.
func (c *Collection) Dropped() bool { return c.dropped.Load() }

// MutationOp identifies the kind of state change a Mutation records.
type MutationOp uint8

// Mutation kinds, covering every write the store performs.
const (
	MutInsert MutationOp = iota + 1
	MutUpdate
	MutDelete
	MutRemoveField
	MutCreateCollection
	MutDropCollection
	MutCreateIndex
)

// Mutation describes one committed state change, in the store's
// serialization order. Doc carries the full document for MutInsert and the
// changed fields for MutUpdate; Field names the target of MutRemoveField
// and MutCreateIndex.
type Mutation struct {
	Op    MutationOp
	Coll  string
	ID    ID
	Doc   Doc
	Field string
}

// WaitFunc blocks until the mutation it was returned for is durable.
type WaitFunc func() error

// Durability receives every mutation the store commits. Append is called
// with the mutated collection's lock held, so the record order equals the
// store's serialization order; implementations must only enqueue (and
// serialise the Doc synchronously — it aliases caller memory) and defer all
// I/O to the returned wait function, which the store invokes after
// releasing the lock and before acknowledging the write.
type Durability interface {
	Append(m Mutation) WaitFunc
}

// DB is an in-memory database: named collections plus an id allocator.
type DB struct {
	mu     sync.RWMutex
	colls  map[string]*Collection
	nextID atomic.Int64

	dur    atomic.Pointer[durabilityBox]
	durErr atomic.Pointer[error]
}

type durabilityBox struct{ d Durability }

// SetDurability attaches a write-ahead logger; every subsequent mutation is
// appended to it before the write is acknowledged. Pass nil to detach.
func (db *DB) SetDurability(d Durability) {
	if d == nil {
		db.dur.Store(nil)
		return
	}
	db.dur.Store(&durabilityBox{d: d})
}

// DurabilityErr returns the first error the durability layer reported, if
// any. Once set, acknowledged writes are no longer guaranteed durable; the
// ORM surfaces this to callers of every later write.
func (db *DB) DurabilityErr() error {
	if p := db.durErr.Load(); p != nil {
		return *p
	}
	return nil
}

// logMutation hands a mutation to the durability layer; callers hold the
// lock covering the mutation. The returned wait must be passed to finish
// after the lock is released.
func (db *DB) logMutation(m Mutation) WaitFunc {
	box := db.dur.Load()
	if box == nil {
		return nil
	}
	return box.d.Append(m)
}

// finish awaits durability of a logged mutation; call with no locks held.
func (db *DB) finish(wait WaitFunc) {
	if wait == nil {
		return
	}
	if err := wait(); err != nil {
		db.durErr.CompareAndSwap(nil, &err)
	}
}

// AdvanceNextID raises the id allocator so future NewID calls never return
// id or anything below it. The WAL uses it when replaying inserts.
func (db *DB) AdvanceNextID(id ID) {
	for {
		cur := db.nextID.Load()
		if int64(id) <= cur || db.nextID.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

// Open returns an empty database.
func Open() *DB {
	db := &DB{colls: map[string]*Collection{}}
	db.nextID.Store(1)
	return db
}

// Collection returns (creating if needed) the named collection.
func (db *DB) Collection(name string) *Collection {
	db.mu.RLock()
	if c, ok := db.colls[name]; ok {
		db.mu.RUnlock()
		return c
	}
	db.mu.RUnlock()
	db.mu.Lock()
	if c, ok := db.colls[name]; ok {
		db.mu.Unlock()
		return c
	}
	c := &Collection{name: name, docs: map[ID]Doc{}, db: db}
	db.colls[name] = c
	wait := db.logMutation(Mutation{Op: MutCreateCollection, Coll: name})
	db.mu.Unlock()
	db.finish(wait)
	return c
}

// Lookup returns the named collection without creating it. Convergence
// checks and the shard router's merge paths use it so that probing for a
// collection never mutates the database (Collection creates, and logs a
// WAL record, on first touch).
func (db *DB) Lookup(name string) (*Collection, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.colls[name]
	return c, ok
}

// DropCollection removes a collection and its documents.
func (db *DB) DropCollection(name string) {
	db.mu.Lock()
	var wait WaitFunc
	if c, ok := db.colls[name]; ok {
		c.dropped.Store(true)
		delete(db.colls, name)
		wait = db.logMutation(Mutation{Op: MutDropCollection, Coll: name})
	}
	db.mu.Unlock()
	db.finish(wait)
}

// CollectionNames lists collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewID allocates a fresh document id.
func (db *DB) NewID() ID { return ID(db.nextID.Add(1)) }

// LastID returns the highest id the allocator has handed out (or been
// advanced past). The shard router seeds its cross-shard allocator with
// the max over shards at open.
func (db *DB) LastID() ID { return ID(db.nextID.Load()) }

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Insert stores a copy of doc, assigning a fresh id, and returns the id.
// When a durability layer is attached, the insert is logged before it is
// acknowledged; a logging failure is reported via DB.DurabilityErr.
func (c *Collection) Insert(doc Doc) ID {
	id := c.db.NewID()
	cp := doc.Clone()
	cp["id"] = id
	c.mu.Lock()
	c.docs[id] = cp
	c.indexAdd(id, cp)
	wait := c.db.logMutation(Mutation{Op: MutInsert, Coll: c.name, ID: id, Doc: cp})
	c.mu.Unlock()
	c.db.finish(wait)
	return id
}

// InsertWithID stores a copy of doc under an explicit id; it fails if the
// id is taken.
func (c *Collection) InsertWithID(id ID, doc Doc) error {
	cp := doc.Clone()
	cp["id"] = id
	c.mu.Lock()
	if _, exists := c.docs[id]; exists {
		c.mu.Unlock()
		return fmt.Errorf("store: id %v already exists in %s", id, c.name)
	}
	c.docs[id] = cp
	c.indexAdd(id, cp)
	wait := c.db.logMutation(Mutation{Op: MutInsert, Coll: c.name, ID: id, Doc: cp})
	c.mu.Unlock()
	c.db.finish(wait)
	return c.db.DurabilityErr()
}

// Get returns a copy of the document with the given id.
func (c *Collection) Get(id ID) (Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Find returns copies of all documents matching every filter, in id order.
// Equality filters on indexed fields probe the index instead of scanning.
func (c *Collection) Find(filters ...Filter) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Doc
	if ids, ok := c.indexProbe(filters); ok {
		for _, id := range ids {
			d := c.docs[id]
			if d != nil && matchAll(d, filters) {
				out = append(out, d.Clone())
			}
		}
	} else {
		for _, d := range c.docs {
			if matchAll(d, filters) {
				out = append(out, d.Clone())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// FindAfter returns copies of at most limit documents whose id exceeds
// after, in ascending id order. It is the online-backfill scan primitive:
// the lock is held only to collect ids and clone the bounded batch, so a
// foreground reader or writer is never blocked behind a whole-collection
// clone the way Find blocks it. Documents inserted later with higher ids
// are picked up by subsequent calls, which is exactly what a watermark
// sweep over a live collection needs. A limit <= 0 means no bound.
func (c *Collection) FindAfter(after ID, limit int) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]ID, 0, len(c.docs))
	for id := range c.docs {
		if id > after {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Doc, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.docs[id].Clone())
	}
	return out
}

// UpdateIfAbsent sets field to v on the document with id only when the
// document does not already carry the field, reporting whether it wrote.
// The check and the write are atomic under the collection lock, so a
// backfill sweep using it never clobbers a value a concurrent lazy
// migration (or an application write under the new schema) already
// installed. A missing document is not an error: the backfill races
// foreground deletes, and a deleted document simply no longer needs the
// field.
func (c *Collection) UpdateIfAbsent(id ID, field string, v Value) (bool, error) {
	c.mu.Lock()
	d, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return false, nil
	}
	if _, present := d[field]; present {
		c.mu.Unlock()
		return false, nil
	}
	c.indexRemove(id, d)
	d[field] = cloneValue(v)
	c.indexAdd(id, d)
	wait := c.db.logMutation(Mutation{Op: MutUpdate, Coll: c.name, ID: id, Doc: Doc{field: d[field]}})
	c.mu.Unlock()
	c.db.finish(wait)
	return true, c.db.DurabilityErr()
}

// Count returns the number of documents matching every filter.
func (c *Collection) Count(filters ...Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	if ids, ok := c.indexProbe(filters); ok {
		for _, id := range ids {
			if d := c.docs[id]; d != nil && matchAll(d, filters) {
				n++
			}
		}
		return n
	}
	for _, d := range c.docs {
		if matchAll(d, filters) {
			n++
		}
	}
	return n
}

// CountAfter returns the number of documents with id > after. Backfills
// use it for cheap remaining-work gauges: it scans ids without cloning
// documents, so the read lock is held only for the scan.
func (c *Collection) CountAfter(after ID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for id := range c.docs {
		if id > after {
			n++
		}
	}
	return n
}

// Update overwrites the given fields of the document with id. It fails if
// the document does not exist.
func (c *Collection) Update(id ID, fields Doc) error {
	c.mu.Lock()
	d, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("store: no document %v in %s", id, c.name)
	}
	c.indexRemove(id, d)
	for k, v := range fields {
		if k == "id" {
			continue // ids are immutable
		}
		d[k] = cloneValue(v)
	}
	c.indexAdd(id, d)
	wait := c.db.logMutation(Mutation{Op: MutUpdate, Coll: c.name, ID: id, Doc: fields})
	c.mu.Unlock()
	c.db.finish(wait)
	return c.db.DurabilityErr()
}

// UpdateAll applies an updater function to every document matching the
// filters; the updater returns the fields to overwrite (nil for no change).
// It returns the number of updated documents. Used by migrations to
// populate new fields.
// Durability is per document: each modified document is logged as its own
// update record, so a crash mid-bulk-update recovers a prefix of the
// individual document updates. The records share one lock hold, so they
// are contiguous in the log and the final wait covers them all.
func (c *Collection) UpdateAll(filters []Filter, update func(Doc) Doc) int {
	c.mu.Lock()
	n := 0
	var wait WaitFunc
	for _, d := range c.docs {
		if !matchAll(d, filters) {
			continue
		}
		fields := update(d.Clone())
		if fields == nil {
			continue
		}
		c.indexRemove(d.ID(), d)
		for k, v := range fields {
			if k == "id" {
				continue
			}
			d[k] = cloneValue(v)
		}
		c.indexAdd(d.ID(), d)
		wait = c.db.logMutation(Mutation{Op: MutUpdate, Coll: c.name, ID: d.ID(), Doc: fields})
		n++
	}
	c.mu.Unlock()
	c.db.finish(wait)
	return n
}

// RemoveField deletes a field from every document (schema migration).
func (c *Collection) RemoveField(field string) {
	c.mu.Lock()
	for id, d := range c.docs {
		c.indexRemove(id, d)
		delete(d, field)
		c.indexAdd(id, d)
	}
	wait := c.db.logMutation(Mutation{Op: MutRemoveField, Coll: c.name, Field: field})
	c.mu.Unlock()
	c.db.finish(wait)
}

// Delete removes the document with the given id, reporting whether it
// existed.
func (c *Collection) Delete(id ID) bool {
	c.mu.Lock()
	d, ok := c.docs[id]
	if !ok {
		c.mu.Unlock()
		return false
	}
	c.indexRemove(id, d)
	delete(c.docs, id)
	wait := c.db.logMutation(Mutation{Op: MutDelete, Coll: c.name, ID: id})
	c.mu.Unlock()
	c.db.finish(wait)
	return true
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

func matchAll(d Doc, filters []Filter) bool {
	for _, f := range filters {
		if !match(d, f) {
			return false
		}
	}
	return true
}

func match(d Doc, f Filter) bool {
	v, ok := d[f.Field]
	if !ok {
		return false
	}
	switch f.Op {
	case FilterEq:
		return valueEq(v, f.Value)
	case FilterContains:
		set, ok := v.([]Value)
		if !ok {
			return false
		}
		for _, e := range set {
			if valueEq(e, f.Value) {
				return true
			}
		}
		return false
	default:
		c, ok := compareValues(v, f.Value)
		if !ok {
			return false
		}
		switch f.Op {
		case FilterLt:
			return c < 0
		case FilterLe:
			return c <= 0
		case FilterGt:
			return c > 0
		case FilterGe:
			return c >= 0
		}
	}
	return false
}

func valueEq(a, b Value) bool {
	if oa, ok := a.(Optional); ok {
		ob, ok := b.(Optional)
		if !ok {
			return false
		}
		if oa.Present != ob.Present {
			return false
		}
		return !oa.Present || valueEq(oa.Value, ob.Value)
	}
	if c, ok := compareValues(a, b); ok {
		return c == 0
	}
	switch x := a.(type) {
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case ID:
		y, ok := b.(ID)
		return ok && x == y
	}
	return false
}

// compareValues orders two numeric values; ok is false for non-numerics.
func compareValues(a, b Value) (int, bool) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return 0, false
	}
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	default:
		return 0, true
	}
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case int:
		return float64(x), true
	}
	return 0, false
}

// Match reports whether a single document satisfies the filter; exported
// for the policy evaluator, which checks principals' own documents against
// Find criteria without scanning collections.
func Match(d Doc, f Filter) bool { return match(d, f) }

// MatchAll reports whether the document satisfies every filter.
func MatchAll(d Doc, filters []Filter) bool { return matchAll(d, filters) }

// Peek calls fn with the live document under the collection lock, avoiding
// the defensive copy Get makes; fn must not retain or mutate the document.
// It reports whether the document exists. The policy evaluator uses this on
// its hot path: every ORM operation evaluates policies that probe the
// principal's own document against Find criteria.
func (c *Collection) Peek(id ID, fn func(Doc)) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return false
	}
	fn(d)
	return true
}

// PeekMatch reports whether the document exists and whether it matches
// every filter, without cloning and without a callback. This is the
// compiled policy engine's Find-membership probe: Peek's closure and defer
// are measurable at that call frequency.
func (c *Collection) PeekMatch(id ID, filters []Filter) (found, matched bool) {
	c.mu.RLock()
	d, found := c.docs[id]
	if found {
		matched = matchAll(d, filters)
	}
	c.mu.RUnlock()
	return found, matched
}
