package store

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	users.EnsureIndex("name")
	alice := users.Insert(Doc{
		"name":    "alice",
		"age":     int64(30),
		"height":  1.7,
		"admin":   true,
		"friends": []Value{ID(7), ID(9)},
		"nick":    Some("al"),
		"boss":    None(),
	})
	peeps := db.Collection("Peep")
	peep := peeps.Insert(Doc{"author": alice, "body": "hello"})

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d, ok := db2.Collection("User").Get(alice)
	if !ok {
		t.Fatal("alice missing after restore")
	}
	if d["name"] != "alice" || d["age"] != int64(30) || d["height"] != 1.7 || d["admin"] != true {
		t.Fatalf("scalars: %#v", d)
	}
	friends := d["friends"].([]Value)
	if len(friends) != 2 || friends[0] != ID(7) || friends[1] != ID(9) {
		t.Fatalf("friends: %#v", d["friends"])
	}
	if nick := d["nick"].(Optional); !nick.Present || nick.Value != "al" {
		t.Fatalf("nick: %#v", d["nick"])
	}
	if boss := d["boss"].(Optional); boss.Present {
		t.Fatalf("boss: %#v", d["boss"])
	}
	p, _ := db2.Collection("Peep").Get(peep)
	if p["author"] != alice {
		t.Fatalf("author: %#v (want ID)", p["author"])
	}
	// Indexes survive and keep working.
	if got := db2.Collection("User").Indexes(); len(got) != 1 || got[0] != "name" {
		t.Fatalf("indexes: %v", got)
	}
	if n := db2.Collection("User").Count(Eq("name", "alice")); n != 1 {
		t.Fatalf("indexed count: %d", n)
	}
	// Fresh ids never collide with restored ones.
	newID := db2.Collection("User").Insert(Doc{"name": "new"})
	if newID == alice || newID == peep {
		t.Fatalf("id collision after restore: %v", newID)
	}
	// A second snapshot of the restored db matches the first modulo the
	// new insert; at minimum it must serialise cleanly.
	var buf2 bytes.Buffer
	if err := db2.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	db := Open()
	for i := 0; i < 20; i++ {
		db.Collection("A").Insert(Doc{"n": int64(i)})
		db.Collection("B").Insert(Doc{"n": int64(i)})
	}
	var b1, b2 bytes.Buffer
	if err := db.Snapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := db.Snapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshots of the same state differ")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Restore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := Restore(strings.NewReader(`{"version":1,"collections":{"A":{"docs":{"1":{"x":{"t":"??","v":"0"}}}}}}`)); err == nil {
		t.Fatal("unknown value tag accepted")
	}
}
