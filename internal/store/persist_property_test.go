package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randValue draws from the full value universe: scalars, ids, sets, and
// optionals, with nested sets and options down to a bounded depth.
func randValue(r *rand.Rand, depth int) Value {
	max := 8
	if depth <= 0 {
		max = 6 // leaves only
	}
	switch r.Intn(max) {
	case 0:
		return nil
	case 1:
		return r.Int63n(1000) - 500
	case 2:
		return float64(r.Int63n(1000))/4 - 100
	case 3:
		return r.Intn(2) == 0
	case 4:
		return fmt.Sprintf("s%d", r.Intn(100))
	case 5:
		return ID(r.Int63n(50) + 1)
	case 6:
		n := r.Intn(4)
		set := make([]Value, n)
		for i := range set {
			set[i] = randValue(r, depth-1)
		}
		return set
	default:
		if r.Intn(3) == 0 {
			return None()
		}
		return Some(randValue(r, depth-1))
	}
}

func randDoc(r *rand.Rand) Doc {
	d := Doc{}
	for i, n := 0, r.Intn(6); i < n; i++ {
		d[fmt.Sprintf("f%d", r.Intn(8))] = randValue(r, 2)
	}
	return d
}

// TestSnapshotRestoreProperty round-trips randomized databases over the
// full value universe: restore(snapshot(db)) must re-snapshot to the
// identical bytes. Byte identity is stronger than semantic equality — it is
// what the WAL's recovery-equivalence checks build on.
func TestSnapshotRestoreProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		db := Open()
		for c, nc := 0, 1+r.Intn(3); c < nc; c++ {
			coll := db.Collection(fmt.Sprintf("c%d", c))
			if r.Intn(2) == 0 {
				coll.EnsureIndex(fmt.Sprintf("f%d", r.Intn(8)))
			}
			for i, n := 0, r.Intn(10); i < n; i++ {
				coll.Insert(randDoc(r))
			}
			// Exercise post-insert mutations too.
			for i, n := 0, r.Intn(3); i < n; i++ {
				docs := coll.Find()
				if len(docs) == 0 {
					break
				}
				d := docs[r.Intn(len(docs))]
				switch r.Intn(3) {
				case 0:
					coll.Update(d.ID(), randDoc(r))
				case 1:
					coll.Delete(d.ID())
				default:
					coll.RemoveField(fmt.Sprintf("f%d", r.Intn(8)))
				}
			}
		}

		var first bytes.Buffer
		if err := db.Snapshot(&first); err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}
		restored, err := Restore(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		var second bytes.Buffer
		if err := restored.Snapshot(&second); err != nil {
			t.Fatalf("trial %d: re-snapshot: %v", trial, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: snapshot not byte-identical after restore:\n%s\n---\n%s",
				trial, first.String(), second.String())
		}
	}
}

// TestMarshalDocRoundTrip checks the WAL's per-document codec over the
// same universe.
func TestMarshalDocRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		doc := randDoc(r)
		b, err := MarshalDoc(doc)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := UnmarshalDoc(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		b2, err := MarshalDoc(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		// JSON object key order is deterministic (sorted by encoding/json),
		// so byte equality is the round-trip check here too.
		if !bytes.Equal(b, b2) {
			t.Fatalf("doc codec not stable: %s vs %s", b, b2)
		}
	}
}

// TestSnapshotConsistentCut runs writers that keep an invariant across two
// collections (equal counters inserted into both) while snapshots are
// taken concurrently. Every restored snapshot must satisfy the invariant:
// the cut never splits a writer's pair of mutations across collections it
// already locked... i.e. Snapshot sees a point-in-time state.
func TestSnapshotConsistentCut(t *testing.T) {
	db := Open()
	a, b := db.Collection("a"), db.Collection("b")
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: appends i to a, then i to b. Invariant for any consistent
	// cut: len(a) >= len(b) and the common prefix matches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.Insert(Doc{"seq": i})
			b.Insert(Doc{"seq": i})
		}
	}()

	for round := 0; round < 30; round++ {
		var buf bytes.Buffer
		if err := db.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		cut, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		na, nb := cut.Collection("a").Len(), cut.Collection("b").Len()
		if nb > na {
			t.Fatalf("inconsistent cut: b has %d docs, a only %d", nb, na)
		}
		if na-nb > 1 {
			// The writer holds at most one pair open at a time, so a
			// consistent cut can only be one insert ahead.
			t.Fatalf("cut split the writer stream: a=%d b=%d", na, nb)
		}
	}
	close(stop)
	wg.Wait()
}
