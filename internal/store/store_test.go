package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	id := users.Insert(Doc{"name": "alice", "age": int64(30)})
	if id == Nil {
		t.Fatal("nil id")
	}
	d, ok := users.Get(id)
	if !ok {
		t.Fatal("not found")
	}
	if d["name"] != "alice" || d["age"] != int64(30) || d.ID() != id {
		t.Fatalf("doc: %v", d)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	id := users.Insert(Doc{"name": "alice", "tags": []Value{"a"}})
	d, _ := users.Get(id)
	d["name"] = "mallory"
	d["tags"].([]Value)[0] = "evil"
	d2, _ := users.Get(id)
	if d2["name"] != "alice" || d2["tags"].([]Value)[0] != "a" {
		t.Fatal("mutation leaked into the store")
	}
}

func TestFindFilters(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	for i := 0; i < 10; i++ {
		users.Insert(Doc{"n": int64(i), "even": i%2 == 0})
	}
	if got := len(users.Find(Eq("even", true))); got != 5 {
		t.Errorf("even: %d", got)
	}
	if got := len(users.Find(Filter{Field: "n", Op: FilterGe, Value: int64(7)})); got != 3 {
		t.Errorf(">=7: %d", got)
	}
	if got := len(users.Find(Filter{Field: "n", Op: FilterLt, Value: int64(3)}, Eq("even", true))); got != 2 {
		t.Errorf("<3 and even: %d", got)
	}
	// Results are id-ordered.
	docs := users.Find()
	for i := 1; i < len(docs); i++ {
		if docs[i-1].ID() >= docs[i].ID() {
			t.Fatal("not sorted by id")
		}
	}
}

func TestContainsFilter(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	a := users.Insert(Doc{"followers": []Value{}})
	users.Update(a, Doc{"followers": []Value{ID(99)}})
	found := users.Find(Filter{Field: "followers", Op: FilterContains, Value: ID(99)})
	if len(found) != 1 || found[0].ID() != a {
		t.Fatalf("contains: %v", found)
	}
	if n := users.Count(Filter{Field: "followers", Op: FilterContains, Value: ID(1)}); n != 0 {
		t.Errorf("unexpected match: %d", n)
	}
}

func TestOptionalValues(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	id1 := users.Insert(Doc{"nick": Some("zed")})
	users.Insert(Doc{"nick": None()})
	found := users.Find(Eq("nick", Some("zed")))
	if len(found) != 1 || found[0].ID() != id1 {
		t.Fatalf("optional eq: %v", found)
	}
	found = users.Find(Eq("nick", None()))
	if len(found) != 1 {
		t.Fatalf("none eq: %v", found)
	}
}

func TestUpdate(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	id := users.Insert(Doc{"name": "alice"})
	if err := users.Update(id, Doc{"name": "bob", "id": ID(12345)}); err != nil {
		t.Fatal(err)
	}
	d, _ := users.Get(id)
	if d["name"] != "bob" {
		t.Error("update lost")
	}
	if d.ID() != id {
		t.Error("id must be immutable")
	}
	if err := users.Update(ID(777777), Doc{"name": "x"}); err == nil {
		t.Error("update of missing doc must fail")
	}
}

func TestUpdateAllAndRemoveField(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	for i := 0; i < 4; i++ {
		users.Insert(Doc{"isAdmin": i == 0})
	}
	n := users.UpdateAll(nil, func(d Doc) Doc {
		level := int64(0)
		if d["isAdmin"] == true {
			level = 2
		}
		return Doc{"adminLevel": level}
	})
	if n != 4 {
		t.Fatalf("updated %d", n)
	}
	if got := users.Count(Eq("adminLevel", int64(2))); got != 1 {
		t.Errorf("admins: %d", got)
	}
	users.RemoveField("isAdmin")
	for _, d := range users.Find() {
		if _, ok := d["isAdmin"]; ok {
			t.Fatal("isAdmin not removed")
		}
	}
}

func TestDelete(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	id := users.Insert(Doc{})
	if !users.Delete(id) {
		t.Fatal("delete failed")
	}
	if users.Delete(id) {
		t.Fatal("double delete succeeded")
	}
	if users.Len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestIDsUniqueAcrossCollections(t *testing.T) {
	db := Open()
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := db.Collection(fmt.Sprintf("C%d", i%3)).Insert(Doc{})
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := Open()
	users := db.Collection("User")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := users.Insert(Doc{"w": int64(w)})
				users.Get(id)
				users.Find(Eq("w", int64(w)))
				users.Update(id, Doc{"i": int64(i)})
				if i%3 == 0 {
					users.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDropCollection(t *testing.T) {
	db := Open()
	db.Collection("A").Insert(Doc{})
	db.DropCollection("A")
	if db.Collection("A").Len() != 0 {
		t.Fatal("collection not dropped")
	}
}

// Property: inserting n docs yields n distinct ids and Find() returns all.
func TestInsertFindProperty(t *testing.T) {
	f := func(names []string) bool {
		if len(names) > 50 {
			names = names[:50]
		}
		db := Open()
		c := db.Collection("X")
		ids := map[ID]bool{}
		for _, n := range names {
			ids[c.Insert(Doc{"name": n})] = true
		}
		if len(ids) != len(names) {
			return false
		}
		return len(c.Find()) == len(names)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: numeric filters partition the collection.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(vals []int64, pivot int64) bool {
		db := Open()
		c := db.Collection("X")
		for _, v := range vals {
			c.Insert(Doc{"v": v})
		}
		lt := c.Count(Filter{Field: "v", Op: FilterLt, Value: pivot})
		ge := c.Count(Filter{Field: "v", Op: FilterGe, Value: pivot})
		return lt+ge == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
