package specdiff

import (
	"testing"

	"scooter/internal/equivcheck"
	"scooter/internal/migrate"
	"scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/typer"
)

func parseSpec(t *testing.T, src string) *schema.Schema {
	t.Helper()
	f, err := parser.ParsePolicyFile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.FromPolicyFile(f)
	if err := typer.New(s).CheckSchema(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSynthesizedScriptEquivalence closes the synthesis loop with a proof:
// the candidate script the differ renders is observationally equivalent to
// a handwritten script reaching the same target spec — even when the
// handwritten one orders commands differently and spells initialisers
// differently — and a handwritten script with a diverging initialiser is
// refuted with a counterexample. This is the library-level contract behind
// `scooter makemigration -compare`.
func TestSynthesizedScriptEquivalence(t *testing.T) {
	from := parseSpec(t, `
User {
  create: public,
  delete: none,
  name: String { read: public, write: none }
}
`)
	to := parseSpec(t, `
User {
  create: public,
  delete: none,
  name: String { read: public, write: none },
  karma: I64 { read: public, write: none }
}
Badge {
  create: public,
  delete: none,
  label: String { read: public, write: none }
}
`)
	res, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("diff must be complete: %v", res.Ambiguities)
	}
	candidate, err := parser.ParseMigration(res.Script())
	if err != nil {
		t.Fatalf("synthesized script does not re-parse: %v", err)
	}

	// Different command order, different-but-equal initialiser spelling.
	handwritten, err := parser.ParseMigration(`
CreateModel(Badge {
  create: public,
  delete: none,
  label: String { read: public, write: none },
});
User::AddField(karma: I64 { read: public, write: none }, _ -> 1 - 1);
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := migrate.VerifyEquivalent(from, "synthesized", candidate, "handwritten", handwritten, equivcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != equivcheck.Equivalent {
		t.Fatalf("synthesized candidate must match the handwritten script, got %s\n%s",
			rep.Verdict, rep.Format())
	}

	diverging, err := parser.ParseMigration(`
CreateModel(Badge {
  create: public,
  delete: none,
  label: String { read: public, write: none },
});
User::AddField(karma: I64 { read: public, write: none }, _ -> 7);
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = migrate.VerifyEquivalent(from, "synthesized", candidate, "diverging", diverging, equivcheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != equivcheck.NotEquivalent || rep.Counterexample == nil {
		t.Fatalf("diverging initialiser must be refuted with a counterexample, got %s\n%s",
			rep.Verdict, rep.Format())
	}
}
