package specdiff

import (
	"strings"
	"testing"

	"scooter/internal/ast"
	"scooter/internal/parser"
	"scooter/internal/schema"
	"scooter/internal/typer"
)

func mustSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	f, err := parser.ParsePolicyFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := schema.FromPolicyFile(f)
	if err := typer.New(s).CheckSchema(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return s
}

const baseSpec = `
@principal
User {
    create: public,
    delete: none,
    name: String {
        read: public,
        write: u -> [u.id],
    },
    age: I64 {
        read: public,
        write: none,
    },
}
`

func diffOf(t *testing.T, from, to string) *Result {
	t.Helper()
	r, err := Diff(mustSchema(t, from), mustSchema(t, to))
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	return r
}

// mustConverge asserts the self-check invariant explicitly for a complete diff.
func mustConverge(t *testing.T, from, to string) *Result {
	t.Helper()
	r := diffOf(t, from, to)
	if !r.Complete {
		t.Fatalf("diff incomplete; ambiguities: %v", r.Ambiguities)
	}
	applied, err := Apply(mustSchema(t, from), r.Commands)
	if err != nil {
		t.Fatalf("apply: %v\nscript:\n%s", err, r.Script())
	}
	if got, want := Canonical(applied), Canonical(mustSchema(t, to)); got != want {
		t.Fatalf("did not converge\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	return r
}

func TestDiffIdentical(t *testing.T) {
	r := mustConverge(t, baseSpec, baseSpec)
	if len(r.Commands) != 0 {
		t.Fatalf("expected empty diff, got %d commands:\n%s", len(r.Commands), r.Script())
	}
}

func TestDiffAddField(t *testing.T) {
	to := strings.Replace(baseSpec, "age: I64 {", "email: String {\n        read: public,\n        write: none,\n    },\n    age: I64 {", 1)
	r := mustConverge(t, baseSpec, to)
	if len(r.Commands) != 1 {
		t.Fatalf("want 1 command, got:\n%s", r.Script())
	}
	add, ok := r.Commands[0].(*ast.AddField)
	if !ok || add.Field.Name != "email" {
		t.Fatalf("want AddField(email), got %s", r.Commands[0])
	}
}

func TestDiffRemoveFieldAndModel(t *testing.T) {
	to := `
@principal
User {
    create: public,
    delete: none,
    name: String {
        read: public,
        write: u -> [u.id],
    },
}
`
	r := mustConverge(t, baseSpec, to)
	if len(r.Commands) != 1 {
		t.Fatalf("want 1 command, got:\n%s", r.Script())
	}
	if _, ok := r.Commands[0].(*ast.RemoveField); !ok {
		t.Fatalf("want RemoveField, got %s", r.Commands[0])
	}

	// Deleting the whole model plus its referencing sibling orders
	// referrer first.
	from := baseSpec + `
Post {
    create: public,
    delete: none,
    author: Id(User) {
        read: public,
        write: none,
    },
}
`
	r2 := mustConverge(t, from, "@static-principal Admin")
	var order []string
	for _, c := range r2.Commands {
		if del, ok := c.(*ast.DeleteModel); ok {
			order = append(order, del.ModelName)
		}
	}
	if len(order) != 2 || order[0] != "Post" || order[1] != "User" {
		t.Fatalf("delete order referrer-first expected [Post User], got %v\n%s", order, r2.Script())
	}
}

func TestDiffCreateModelTopoOrder(t *testing.T) {
	to := baseSpec + `
Order {
    create: public,
    delete: none,
    buyer: Id(User) {
        read: public,
        write: none,
    },
    lines: Set(Id(LineItem)) {
        read: public,
        write: none,
    },
}

LineItem {
    create: public,
    delete: none,
    sku: String {
        read: public,
        write: none,
    },
}
`
	r := mustConverge(t, baseSpec, to)
	var creates []string
	for _, c := range r.Commands {
		if cm, ok := c.(*ast.CreateModel); ok {
			creates = append(creates, cm.Model.Name)
		}
	}
	if len(creates) != 2 || creates[0] != "LineItem" || creates[1] != "Order" {
		t.Fatalf("create order referent-first expected [LineItem Order], got %v", creates)
	}
}

func TestDiffPolicyUpdates(t *testing.T) {
	to := strings.Replace(baseSpec, "create: public", "create: none", 1)
	to = strings.Replace(to, "read: public,\n        write: none", "read: none,\n        write: none", 1)
	r := mustConverge(t, baseSpec, to)
	var haveModel, haveField bool
	for _, c := range r.Commands {
		switch cmd := c.(type) {
		case *ast.UpdatePolicy:
			haveModel = cmd.ModelName == "User" && cmd.Op == ast.OpCreate
		case *ast.UpdateFieldPolicy:
			haveField = cmd.ModelName == "User" && cmd.FieldName == "age" && cmd.Read != nil && cmd.Write == nil
		default:
			t.Fatalf("unexpected command %s", c)
		}
	}
	if !haveModel || !haveField {
		t.Fatalf("missing policy updates:\n%s", r.Script())
	}
	// Synthesis must never use the Weaken* escape hatches.
	if s := r.Script(); strings.Contains(s, "Weaken") {
		t.Fatalf("synthesized script uses Weaken:\n%s", s)
	}
}

func TestDiffStaticsAndPrincipal(t *testing.T) {
	from := "@static-principal Admin\n" + baseSpec
	// Demoting User also requires rewriting the policy that used `u.id`
	// as a principal.
	demoted := strings.Replace(baseSpec, "@principal\nUser", "User", 1)
	demoted = strings.Replace(demoted, "write: u -> [u.id],", "write: none,", 1)
	to := "@static-principal Auditor\n" + demoted
	r := mustConverge(t, from, to)
	var kinds []string
	for _, c := range r.Commands {
		switch c.(type) {
		case *ast.AddStaticPrincipal:
			kinds = append(kinds, "add-static")
		case *ast.RemovePrincipal:
			kinds = append(kinds, "remove-principal")
		case *ast.RemoveStaticPrincipal:
			kinds = append(kinds, "remove-static")
		}
	}
	want := []string{"add-static", "remove-principal", "remove-static"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("want phases %v, got %v:\n%s", want, kinds, r.Script())
	}
}

func TestDiffFieldRenameAmbiguity(t *testing.T) {
	to := strings.Replace(baseSpec, "age: I64 {", "years: I64 {", 1)
	r := mustConverge(t, baseSpec, to)
	var found bool
	for _, a := range r.Ambiguities {
		if a.Kind == FieldRename && a.Model == "User" && a.Field == "age" {
			found = true
			if !strings.Contains(a.Detail, "years") {
				t.Fatalf("rename candidate not named: %s", a.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("no FieldRename ambiguity reported: %v", r.Ambiguities)
	}
	// Still synthesizes remove+add and converges (checked by mustConverge).
	if !strings.Contains(r.Script(), "AMBIGUITY") {
		t.Fatalf("ambiguity not rendered into script:\n%s", r.Script())
	}
}

func TestDiffModelRenameAmbiguity(t *testing.T) {
	from := baseSpec + `
Log {
    create: public,
    delete: none,
    line: String {
        read: public,
        write: none,
    },
}
`
	to := baseSpec + `
AuditLog {
    create: public,
    delete: none,
    line: String {
        read: public,
        write: none,
    },
}
`
	r := mustConverge(t, from, to)
	var found bool
	for _, a := range r.Ambiguities {
		if a.Kind == ModelRename && a.Model == "Log" && strings.Contains(a.Detail, "AuditLog") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ModelRename ambiguity: %v", r.Ambiguities)
	}
}

func TestDiffTypeChange(t *testing.T) {
	to := strings.Replace(baseSpec, "age: I64 {", "age: F64 {", 1)
	r := mustConverge(t, baseSpec, to)
	var found bool
	for _, a := range r.Ambiguities {
		if a.Kind == TypeChange && a.Field == "age" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no TypeChange ambiguity: %v", r.Ambiguities)
	}
	// Must remove before re-adding the same name.
	var removeIdx, addIdx = -1, -1
	for i, c := range r.Commands {
		switch cmd := c.(type) {
		case *ast.RemoveField:
			if cmd.FieldName == "age" {
				removeIdx = i
			}
		case *ast.AddField:
			if cmd.Field.Name == "age" {
				addIdx = i
			}
		}
	}
	if removeIdx == -1 || addIdx == -1 || removeIdx > addIdx {
		t.Fatalf("type change must order RemoveField before AddField, got remove=%d add=%d:\n%s", removeIdx, addIdx, r.Script())
	}
}

func TestDiffNoInitialiser(t *testing.T) {
	to := strings.Replace(baseSpec, "age: I64 {", "boss: Id(User) {", 1)
	r := diffOf(t, baseSpec, to)
	if r.Complete {
		t.Fatalf("diff with Id-typed added field must be incomplete")
	}
	var found bool
	for _, a := range r.Ambiguities {
		if a.Kind == NoInitialiser && a.Field == "boss" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no NoInitialiser ambiguity: %v", r.Ambiguities)
	}
	if !strings.Contains(r.Script(), "INCOMPLETE") {
		t.Fatalf("incomplete marker missing:\n%s", r.Script())
	}
}

func TestDiffDefaultInits(t *testing.T) {
	to := strings.Replace(baseSpec, "age: I64 {", `s: String {
        read: public,
        write: none,
    },
    b: Blob {
        read: public,
        write: none,
    },
    n: I64 {
        read: public,
        write: none,
    },
    f: F64 {
        read: public,
        write: none,
    },
    ok: Bool {
        read: public,
        write: none,
    },
    at: DateTime {
        read: public,
        write: none,
    },
    opt: Option(Id(User)) {
        read: public,
        write: none,
    },
    tags: Set(String) {
        read: public,
        write: none,
    },
    age: I64 {`, 1)
	r := mustConverge(t, baseSpec, to)
	// Every synthesized command must round-trip through the parser.
	script := r.Script()
	if _, err := parser.ParseMigration(script); err != nil {
		t.Fatalf("synthesized script does not re-parse: %v\n%s", err, script)
	}
}

func TestScriptRoundTripsThroughParser(t *testing.T) {
	to := strings.Replace(baseSpec, "create: public", "create: none", 1)
	r := mustConverge(t, baseSpec, to)
	f, err := parser.ParseMigration(r.Script())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, r.Script())
	}
	if len(f.Commands) != len(r.Commands) {
		t.Fatalf("command count changed across round trip: %d vs %d", len(f.Commands), len(r.Commands))
	}
	for i := range f.Commands {
		if f.Commands[i].String() != r.Commands[i].String() {
			t.Fatalf("command %d changed: %q vs %q", i, f.Commands[i].String(), r.Commands[i].String())
		}
	}
}

const principalAlpha = `
@principal
Alpha {
    create: public,
    delete: none,
}
`

func TestDiffDemotionDefersNewReferences(t *testing.T) {
	// Alpha loses principal status while a NEW field typed Id(Alpha)
	// appears elsewhere: the AddField must wait until after the
	// RemovePrincipal or the demotion is structurally refused.
	to := `
Alpha {
    create: public,
    delete: none,
}

Beta {
    create: public,
    delete: none,
    ref: Option(Id(Alpha)) {
        read: public,
        write: none,
    },
}
`
	r := mustConverge(t, principalAlpha, to)
	demote, add := -1, -1
	for i, c := range r.Commands {
		switch cmd := c.(type) {
		case *ast.RemovePrincipal:
			demote = i
		case *ast.CreateModel:
			if cmd.Model.Name == "Beta" {
				add = i
			}
		}
	}
	if demote == -1 || add == -1 || add < demote {
		t.Fatalf("creation referencing demoted model must follow RemovePrincipal, got demote=%d create=%d:\n%s", demote, add, r.Script())
	}
}

func TestDiffDemotionBlocked(t *testing.T) {
	// The referencing field exists in BOTH specs: no synthesized command
	// removes it, so the demotion cannot structurally succeed and must be
	// reported rather than guessed at.
	withRef := `
Beta {
    create: public,
    delete: none,
    ref: Id(Alpha) {
        read: public,
        write: none,
    },
}
`
	from := principalAlpha + withRef
	to := strings.Replace(from, "@principal\nAlpha", "Alpha", 1)
	r := diffOf(t, from, to)
	if r.Complete {
		t.Fatalf("blocked demotion must mark the diff incomplete:\n%s", r.Script())
	}
	var found bool
	for _, a := range r.Ambiguities {
		if a.Kind == DemotionBlocked && a.Model == "Alpha" && strings.Contains(a.Detail, "Beta.ref") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no DemotionBlocked ambiguity: %v", r.Ambiguities)
	}
	for _, c := range r.Commands {
		if _, ok := c.(*ast.RemovePrincipal); ok {
			t.Fatalf("blocked demotion must not be emitted:\n%s", r.Script())
		}
	}
}

func TestCanonicalOrderInsensitive(t *testing.T) {
	a := mustSchema(t, baseSpec+"\nPost {\n    create: public,\n    delete: none,\n}\n")
	b := mustSchema(t, "Post {\n    create: public,\n    delete: none,\n}\n"+baseSpec)
	if Canonical(a) != Canonical(b) {
		t.Fatalf("canonical form is declaration-order sensitive")
	}
	r, err := Diff(a, b)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(r.Commands) != 0 {
		t.Fatalf("reordered spec should need no migration:\n%s", r.Script())
	}
}
