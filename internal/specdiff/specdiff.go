// Package specdiff compares two typed Scooter specifications and
// synthesizes a candidate migration script that transforms the first into
// the second. Synthesis is deliberately unsound on its own: the candidate
// always uses the strict command forms (UpdatePolicy, never WeakenPolicy),
// so every policy change arrives at Sidecar as a proof obligation —
// synthesis proposes, Sidecar disposes. Anything the differ cannot decide
// mechanically (a possible rename, a field with no synthesizable
// initialiser) is surfaced as an explicit Ambiguity instead of a guess.
//
// Commands are emitted in a fixed phase order so the script verifies and
// applies left to right: new static principals, new models (in dependency
// order), principal promotions, new fields, policy updates, field
// removals (referrers first), model deletions (referrers first), principal
// demotions, and finally static-principal removals. Policy updates run
// before removals so a policy that stopped referencing a doomed field is
// rewritten before the field goes away.
package specdiff

import (
	"fmt"
	"sort"
	"strings"

	"scooter/internal/ast"
	"scooter/internal/lexer"
	"scooter/internal/migrate"
	"scooter/internal/schema"
	"scooter/internal/specfmt"
	"scooter/internal/token"
)

// Kind classifies an ambiguity the differ reports instead of guessing.
type Kind int

const (
	// FieldRename: a removed and an added field on the same model share a
	// signature (type + policies). The differ emits RemoveField+AddField —
	// which loses the column's data — and reports the possible rename.
	FieldRename Kind = iota
	// ModelRename: a deleted and a created model share their full field
	// signature. Emitted as DeleteModel+CreateModel; data does not move.
	ModelRename
	// NoInitialiser: an added field's type has no synthesizable default
	// (e.g. Id(Model)); the AddField is omitted and Result.Complete is
	// false — a human must supply the initialiser.
	NoInitialiser
	// TypeChange: a field kept its name but changed type; expressed as
	// RemoveField+AddField, which loses the column's data.
	TypeChange
	// CreateCycle: new models reference each other cyclically, so no
	// creation order can type-check; the script will fail verification.
	CreateCycle
	// DemotionBlocked: a model loses principal status in the target spec,
	// but a field or policy kept from the old spec still references it —
	// RemovePrincipal conservatively refuses while any reference exists,
	// so the demotion is omitted and Result.Complete is false.
	DemotionBlocked
)

func (k Kind) String() string {
	switch k {
	case FieldRename:
		return "possible-field-rename"
	case ModelRename:
		return "possible-model-rename"
	case NoInitialiser:
		return "no-initialiser"
	case TypeChange:
		return "type-change"
	case CreateCycle:
		return "create-cycle"
	case DemotionBlocked:
		return "demotion-blocked"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Ambiguity is one decision the differ refused to make silently.
type Ambiguity struct {
	Kind   Kind
	Model  string
	Field  string // empty for model-level ambiguities
	Detail string
}

func (a Ambiguity) String() string {
	loc := a.Model
	if a.Field != "" {
		loc += "." + a.Field
	}
	return fmt.Sprintf("%s: %s: %s", a.Kind, loc, a.Detail)
}

// Result is a synthesized candidate migration.
type Result struct {
	// Commands is the candidate script in verification order.
	Commands []ast.Command
	// Ambiguities lists every decision that needs a human (or at least a
	// careful reviewer); renames and type changes still synthesize, a
	// missing initialiser does not.
	Ambiguities []Ambiguity
	// Complete is false when some difference could not be expressed (a
	// NoInitialiser ambiguity); applying the script then does NOT
	// converge to the target spec.
	Complete bool
}

// Script renders the candidate as Scooter_m source, ambiguity report
// included as comments so the generated file carries its own caveats.
func (r *Result) Script() string {
	var b strings.Builder
	b.WriteString("# Synthesized by scooter makemigration; verify with sidecar before applying.\n")
	for _, a := range r.Ambiguities {
		fmt.Fprintf(&b, "# AMBIGUITY %s\n", a)
	}
	if !r.Complete {
		b.WriteString("# INCOMPLETE: differences without a synthesizable initialiser were omitted.\n")
	}
	for _, cmd := range r.Commands {
		b.WriteString(cmd.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Diff computes the candidate migration from `from` to `to`. Both schemas
// must be type-checked. When the synthesized script is complete, Diff
// self-checks it: the script is structurally applied to `from` and the
// outcome must be canonically identical to `to`.
func Diff(from, to *schema.Schema) (*Result, error) {
	d := &differ{from: from, to: to, res: &Result{Complete: true}}
	d.statics()
	d.models()
	if d.res.Complete {
		applied, err := Apply(from, d.res.Commands)
		if err != nil {
			return nil, fmt.Errorf("specdiff: synthesized script does not apply: %w", err)
		}
		if got, want := Canonical(applied), Canonical(to); got != want {
			return nil, fmt.Errorf("specdiff: synthesized script does not converge to the target spec\n--- applied ---\n%s--- target ---\n%s", got, want)
		}
	}
	return d.res, nil
}

// Apply structurally executes a candidate script against a schema without
// strictness proofs — the preview path used by the differ's self-check and
// the round-trip property tests. Real application always goes through
// migrate.Verify / the workspace journal so Sidecar disposes first.
func Apply(from *schema.Schema, cmds []ast.Command) (*schema.Schema, error) {
	opts := migrate.DefaultOptions()
	opts.SkipVerification = true
	plan, err := migrate.Verify(from, &ast.MigrationScript{Commands: cmds}, opts)
	if err != nil {
		return nil, err
	}
	return plan.After, nil
}

// Canonical renders a schema with models, fields, and statics sorted by
// name — the order-insensitive identity the differ converges on. (A spec
// that differs only in declaration order needs no migration.)
func Canonical(s *schema.Schema) string {
	cp := s.Clone()
	sort.Strings(cp.Statics)
	sort.Slice(cp.Models, func(i, j int) bool { return cp.Models[i].Name < cp.Models[j].Name })
	for _, m := range cp.Models {
		sort.Slice(m.Fields, func(i, j int) bool { return m.Fields[i].Name < m.Fields[j].Name })
	}
	return specfmt.Format(cp)
}

type differ struct {
	from, to *schema.Schema
	res      *Result
}

func (d *differ) add(c ast.Command)     { d.res.Commands = append(d.res.Commands, c) }
func (d *differ) ambiguous(a Ambiguity) { d.res.Ambiguities = append(d.res.Ambiguities, a) }
func pos() token.Pos                    { return token.Pos{} }
func policyEq(a, b ast.Policy) bool     { return a.String() == b.String() }
func base() ast.CmdBase                 { return ast.NewCmdBase(pos()) }

// statics diffs the static-principal sets. Additions go first in the
// script; removals last (they must wait for policy updates that drop the
// final references).
func (d *differ) statics() {
	for _, name := range sortedStrings(d.to.Statics) {
		if !d.from.HasStatic(name) {
			d.add(&ast.AddStaticPrincipal{CmdBase: base(), PrincipalName: name})
		}
	}
}

func (d *differ) staticRemovals() []ast.Command {
	var out []ast.Command
	for _, name := range sortedStrings(d.from.Statics) {
		if !d.to.HasStatic(name) {
			out = append(out, &ast.RemoveStaticPrincipal{CmdBase: base(), PrincipalName: name})
		}
	}
	return out
}

// models drives the per-phase synthesis for model-level changes.
func (d *differ) models() {
	var created, deleted, shared []string
	for _, m := range d.to.Models {
		if d.from.Model(m.Name) == nil {
			created = append(created, m.Name)
		} else {
			shared = append(shared, m.Name)
		}
	}
	for _, m := range d.from.Models {
		if d.to.Model(m.Name) == nil {
			deleted = append(deleted, m.Name)
		}
	}
	sort.Strings(created)
	sort.Strings(deleted)
	sort.Strings(shared)

	// demoted: models losing principal status. Anything NEW that
	// references them (created models, added fields) must wait until
	// after the RemovePrincipal, which conservatively refuses while any
	// reference exists.
	demoted := map[string]bool{}
	for _, name := range shared {
		if d.from.Model(name).Principal && !d.to.Model(name).Principal {
			demoted[name] = true
		}
	}

	// Phase 2: create new models, referrers after their referents.
	// Creations referencing a demoted model — directly, or transitively
	// through another late creation — move past the demotion phase.
	lateCreate := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, name := range created {
			if lateCreate[name] {
				continue
			}
			m := d.to.Model(name)
			refs := d.modelRefs(m, created)
			late := false
			for _, r := range refs {
				if lateCreate[r] {
					late = true
				}
			}
			for dm := range demoted {
				if modelReferences(m, dm) {
					late = true
				}
			}
			if late {
				lateCreate[name] = true
				changed = true
			}
		}
	}
	var earlyCreated, lateCreated []string
	for _, name := range created {
		if lateCreate[name] {
			lateCreated = append(lateCreated, name)
		} else {
			earlyCreated = append(earlyCreated, name)
		}
	}

	d.detectModelRenames(deleted, created)

	createInOrder := func(names []string) {
		for _, name := range topoOrder(names, func(name string) []string {
			return d.modelRefs(d.to.Model(name), names)
		}, func(cycle []string) {
			d.ambiguous(Ambiguity{Kind: CreateCycle, Model: strings.Join(cycle, ", "),
				Detail: "new models reference each other; no creation order can type-check"})
		}) {
			d.add(&ast.CreateModel{CmdBase: base(), Model: declFromModel(d.to.Model(name))})
		}
	}
	createInOrder(earlyCreated)

	// Phase 3: principal promotions (before any policy can use the ids).
	for _, name := range shared {
		if !d.from.Model(name).Principal && d.to.Model(name).Principal {
			d.add(&ast.AddPrincipal{CmdBase: base(), ModelName: name})
		}
	}

	// Phase 4: new fields, with synthesized initialisers. AddFields that
	// re-use the name of a removed field (type changes) defer until after
	// the removals phase; AddFields referencing a demoted model (in their
	// type or policies) defer until after the demotion.
	type removal struct{ model, field string }
	var removals []removal
	var deferredAdds, lateAdds []ast.Command
	refsDemoted := func(f *schema.Field) bool {
		return typeRefsAny(f.Type, demoted) ||
			policyRefsAny(f.Read, demoted) || policyRefsAny(f.Write, demoted)
	}
	for _, name := range shared {
		fm, tm := d.from.Model(name), d.to.Model(name)
		var removedFields, addedFields []*schema.Field
		for _, f := range fm.Fields {
			tf := tm.Field(f.Name)
			if tf == nil {
				removedFields = append(removedFields, f)
			} else if !tf.Type.Equal(f.Type) {
				// A type change is remove+add under the hood.
				removedFields = append(removedFields, f)
				addedFields = append(addedFields, tf)
				d.ambiguous(Ambiguity{Kind: TypeChange, Model: name, Field: f.Name,
					Detail: fmt.Sprintf("type changed %s -> %s; expressed as RemoveField+AddField, existing values are lost", f.Type, tf.Type)})
			}
		}
		for _, f := range tm.Fields {
			if fm.Field(f.Name) == nil {
				addedFields = append(addedFields, f)
			}
		}
		d.detectFieldRenames(name, removedFields, addedFields)
		for _, f := range addedFields {
			init, ok := defaultInit(f.Type)
			if !ok {
				d.res.Complete = false
				d.ambiguous(Ambiguity{Kind: NoInitialiser, Model: name, Field: f.Name,
					Detail: fmt.Sprintf("no synthesizable default for type %s; write the AddField initialiser by hand", f.Type)})
				continue
			}
			cmd := &ast.AddField{CmdBase: base(), ModelName: name, Field: &ast.FieldDecl{
				Name: f.Name, Type: f.Type, Read: f.Read, Write: f.Write, Pos: pos(),
			}, Init: init}
			switch {
			case refsDemoted(f):
				lateAdds = append(lateAdds, cmd)
			case fm.Field(f.Name) != nil:
				// Type change: the old column must be removed before a
				// field of the same name can be re-added.
				deferredAdds = append(deferredAdds, cmd)
			default:
				d.add(cmd)
			}
		}
		for _, f := range removedFields {
			removals = append(removals, removal{name, f.Name})
		}
	}

	// Phase 5: policy updates, always the strict (provable) forms.
	for _, name := range shared {
		fm, tm := d.from.Model(name), d.to.Model(name)
		if !policyEq(fm.Create, tm.Create) {
			d.add(&ast.UpdatePolicy{CmdBase: base(), ModelName: name, Op: ast.OpCreate, NewPolicy: tm.Create})
		}
		if !policyEq(fm.Delete, tm.Delete) {
			d.add(&ast.UpdatePolicy{CmdBase: base(), ModelName: name, Op: ast.OpDelete, NewPolicy: tm.Delete})
		}
		for _, f := range fm.Fields {
			tf := tm.Field(f.Name)
			if tf == nil || !tf.Type.Equal(f.Type) {
				continue
			}
			var read, write *ast.Policy
			if !policyEq(f.Read, tf.Read) {
				p := tf.Read
				read = &p
			}
			if !policyEq(f.Write, tf.Write) {
				p := tf.Write
				write = &p
			}
			if read != nil || write != nil {
				d.add(&ast.UpdateFieldPolicy{CmdBase: base(), ModelName: name, FieldName: f.Name, Read: read, Write: write})
			}
		}
	}

	// Phase 6: field removals, referrers before referents so a removed
	// field whose policy still reads a sibling goes first.
	sort.Slice(removals, func(i, j int) bool {
		if removals[i].model != removals[j].model {
			return removals[i].model < removals[j].model
		}
		return removals[i].field < removals[j].field
	})
	removalNames := make([]string, len(removals))
	byKey := map[string]removal{}
	for i, r := range removals {
		key := r.model + "." + r.field
		removalNames[i] = key
		byKey[key] = r
	}
	for _, key := range topoOrder(removalNames, func(key string) []string {
		// Edges point referrer -> referent: the field whose policy READS
		// another doomed field must be removed first, so referents depend
		// on referrers being gone.
		r := byKey[key]
		f := d.from.Model(r.model).Field(r.field)
		var deps []string
		for _, other := range removalNames {
			if other == key {
				continue
			}
			o := byKey[other]
			if fieldPolicyReferences(d.from.Model(o.model).Field(o.field), r.model, r.field) {
				deps = append(deps, other)
			}
		}
		_ = f
		return deps
	}, func([]string) { /* cycles fall back to name order; verification reports it */ }) {
		r := byKey[key]
		d.add(&ast.RemoveField{CmdBase: base(), ModelName: r.model, FieldName: r.field})
	}

	// Phase 6b: re-adds deferred behind the removal of their namesake.
	for _, c := range deferredAdds {
		d.add(c)
	}

	// Phase 7: model deletions, referrers before referents.
	for _, name := range topoOrder(deleted, func(name string) []string {
		var deps []string
		for _, other := range deleted {
			if other == name {
				continue
			}
			if modelReferences(d.from.Model(other), name) {
				deps = append(deps, other)
			}
		}
		return deps
	}, func([]string) { /* cycles fall back to name order; verification reports it */ }) {
		d.add(&ast.DeleteModel{CmdBase: base(), ModelName: name})
	}

	// Phase 8: principal demotions. A demotion that kept references from
	// the old spec cannot structurally succeed (RemovePrincipal refuses
	// while anything mentions the model), so it is reported, not guessed.
	for _, name := range sortedStrings(mapKeys(demoted)) {
		if blockers := d.demotionBlockers(name); len(blockers) > 0 {
			d.res.Complete = false
			d.ambiguous(Ambiguity{Kind: DemotionBlocked, Model: name,
				Detail: fmt.Sprintf("still referenced by %s; restructure those first, then demote", strings.Join(blockers, ", "))})
			continue
		}
		d.add(&ast.RemovePrincipal{CmdBase: base(), ModelName: name})
	}

	// Phase 8b: creations and field additions that reference a demoted
	// model, held back until the demotion is done.
	createInOrder(lateCreated)
	for _, c := range lateAdds {
		d.add(c)
	}

	// Phase 9: static-principal removals.
	for _, c := range d.staticRemovals() {
		d.add(c)
	}
}

// modelRefs returns the members of universe (other than m itself) that m's
// policies or field types reference.
func (d *differ) modelRefs(m *schema.Model, universe []string) []string {
	inUniverse := map[string]bool{}
	for _, u := range universe {
		inUniverse[u] = true
	}
	refs := map[string]bool{}
	addPolicy := func(p ast.Policy) {
		if p.Kind != ast.PolicyFunc {
			return
		}
		for name := range ast.ReferencedModels(p.Fn.Body) {
			refs[name] = true
		}
	}
	addPolicy(m.Create)
	addPolicy(m.Delete)
	for _, f := range m.Fields {
		addPolicy(f.Read)
		addPolicy(f.Write)
		for _, name := range f.Type.ReferencedModels() {
			refs[name] = true
		}
	}
	var out []string
	for name := range refs {
		if name != m.Name && inUniverse[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// demotionBlockers lists the references to model m that survive from the
// old spec into the new one — field types and policies present in both,
// which no synthesized command removes, so they will still exist when the
// RemovePrincipal runs. Additions that reference m are not blockers: they
// are deferred past the demotion.
func (d *differ) demotionBlockers(m string) []string {
	set := map[string]bool{m: true}
	var out []string
	polRefs := func(p ast.Policy) bool { return policyRefsAny(p, set) }
	for _, x := range d.to.Models {
		if x.Name == m {
			continue
		}
		fx := d.from.Model(x.Name)
		if fx == nil {
			continue // created models referencing m are themselves deferred
		}
		if polRefs(x.Create) {
			out = append(out, x.Name+".create")
		}
		if polRefs(x.Delete) {
			out = append(out, x.Name+".delete")
		}
		for _, f := range x.Fields {
			ff := fx.Field(f.Name)
			if ff == nil || !ff.Type.Equal(f.Type) {
				continue // added or type-changed fields are deferred adds
			}
			if typeRefsAny(f.Type, set) {
				out = append(out, x.Name+"."+f.Name)
			}
			if polRefs(f.Read) {
				out = append(out, x.Name+"."+f.Name+".read")
			}
			if polRefs(f.Write) {
				out = append(out, x.Name+"."+f.Name+".write")
			}
		}
	}
	return out
}

// policyRefsAny reports whether p's body references any model in set.
func policyRefsAny(p ast.Policy, set map[string]bool) bool {
	if p.Kind != ast.PolicyFunc {
		return false
	}
	for name := range ast.ReferencedModels(p.Fn.Body) {
		if set[name] {
			return true
		}
	}
	return false
}

// typeRefsAny reports whether t mentions any model in set.
func typeRefsAny(t ast.Type, set map[string]bool) bool {
	for _, n := range t.ReferencedModels() {
		if set[n] {
			return true
		}
	}
	return false
}

func mapKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// detectFieldRenames reports removed/added field pairs on one model that
// share a signature — the classic rename that a structural differ cannot
// distinguish from delete+create.
func (d *differ) detectFieldRenames(model string, removed, added []*schema.Field) {
	for _, rf := range removed {
		var matches []string
		for _, af := range added {
			if af.Name != rf.Name && fieldSignature(af) == fieldSignature(rf) {
				matches = append(matches, af.Name)
			}
		}
		if len(matches) == 1 {
			d.ambiguous(Ambiguity{Kind: FieldRename, Model: model, Field: rf.Name,
				Detail: fmt.Sprintf("removed field matches added field %q exactly (same type and policies); if this is a rename, write the migration by hand to preserve data", matches[0])})
		} else if len(matches) > 1 {
			d.ambiguous(Ambiguity{Kind: FieldRename, Model: model, Field: rf.Name,
				Detail: fmt.Sprintf("removed field matches %d added fields (%s); cannot tell which, if any, is a rename", len(matches), strings.Join(matches, ", "))})
		}
	}
}

// detectModelRenames reports deleted/created model pairs with identical
// field signatures.
func (d *differ) detectModelRenames(deleted, created []string) {
	for _, dn := range deleted {
		sig := modelSignature(d.from.Model(dn))
		var matches []string
		for _, cn := range created {
			if modelSignature(d.to.Model(cn)) == sig {
				matches = append(matches, cn)
			}
		}
		if len(matches) >= 1 {
			d.ambiguous(Ambiguity{Kind: ModelRename, Model: dn,
				Detail: fmt.Sprintf("deleted model matches created model(s) %s field-for-field; if this is a rename, data will not move", strings.Join(matches, ", "))})
		}
	}
}

// fieldSignature is the rename-matching identity of a field: everything
// but its name.
func fieldSignature(f *schema.Field) string {
	return f.Type.String() + "\x00" + f.Read.String() + "\x00" + f.Write.String()
}

// modelSignature is the rename-matching identity of a model: its sorted
// (name, signature) field set plus model-level policies.
func modelSignature(m *schema.Model) string {
	parts := make([]string, 0, len(m.Fields)+3)
	for _, f := range m.Fields {
		parts = append(parts, f.Name+"\x00"+fieldSignature(f))
	}
	sort.Strings(parts)
	parts = append(parts, m.Create.String(), m.Delete.String(), fmt.Sprint(m.Principal))
	return strings.Join(parts, "\x01")
}

// fieldPolicyReferences reports whether f's read or write policy reads
// model.field.
func fieldPolicyReferences(f *schema.Field, model, field string) bool {
	ref := ast.FieldRef{Model: model, Field: field}
	for _, p := range []ast.Policy{f.Read, f.Write} {
		if p.Kind == ast.PolicyFunc && ast.ReferencedFields(p.Fn.Body)[ref] {
			return true
		}
	}
	return false
}

// modelReferences reports whether any policy or field type of m mentions
// the named model.
func modelReferences(m *schema.Model, name string) bool {
	check := func(p ast.Policy) bool {
		return p.Kind == ast.PolicyFunc && ast.ReferencedModels(p.Fn.Body)[name]
	}
	if check(m.Create) || check(m.Delete) {
		return true
	}
	for _, f := range m.Fields {
		if check(f.Read) || check(f.Write) {
			return true
		}
		for _, ref := range f.Type.ReferencedModels() {
			if ref == name {
				return true
			}
		}
	}
	return false
}

// declFromModel converts a schema model back to the declaration form
// CreateModel carries.
func declFromModel(m *schema.Model) *ast.ModelDecl {
	d := &ast.ModelDecl{
		Name:      m.Name,
		Principal: m.Principal,
		Create:    m.Create,
		Delete:    m.Delete,
		Pos:       pos(),
	}
	for _, f := range m.Fields {
		d.Fields = append(d.Fields, &ast.FieldDecl{
			Name: f.Name, Type: f.Type, Read: f.Read, Write: f.Write, Pos: pos(),
		})
	}
	return d
}

// epochRaw is the datetime literal used as the DateTime default.
const epochRaw = "d1-1-1970-00:00:00"

// defaultInit synthesizes the `_ -> default` initialiser for an added
// field, when its type has an obvious neutral element. Id(Model) does not:
// no constant names an instance, so the human writes that one.
func defaultInit(t ast.Type) (*ast.FuncLit, bool) {
	body, ok := defaultExpr(t)
	if !ok {
		return nil, false
	}
	return ast.NewFuncLit(pos(), "_", body), true
}

func defaultExpr(t ast.Type) (ast.Expr, bool) {
	switch t.Kind {
	case ast.TString, ast.TBlob:
		return ast.NewStringLit(pos(), ""), true
	case ast.TI64:
		return ast.NewIntLit(pos(), 0), true
	case ast.TF64:
		return ast.NewFloatLit(pos(), 0), true
	case ast.TBool:
		return ast.NewBoolLit(pos(), false), true
	case ast.TDateTime:
		unix, err := lexer.ParseDateTime(epochRaw)
		if err != nil {
			return nil, false
		}
		return ast.NewDateTimeLit(pos(), unix, epochRaw), true
	case ast.TOption:
		return ast.NewNoneLit(pos()), true
	case ast.TSet:
		return ast.NewSetLit(pos(), nil), true
	}
	return nil, false
}

// topoOrder orders names so that every name's deps() come first; on a
// cycle, onCycle is called with the strongly connected remainder and the
// stragglers are appended in sorted order.
func topoOrder(names []string, deps func(string) []string, onCycle func([]string)) []string {
	remaining := map[string]bool{}
	for _, n := range names {
		remaining[n] = true
	}
	var out []string
	for len(remaining) > 0 {
		var ready []string
		for n := range remaining {
			ok := true
			for _, dep := range deps(n) {
				if remaining[dep] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, n)
			}
		}
		if len(ready) == 0 {
			var rest []string
			for n := range remaining {
				rest = append(rest, n)
			}
			sort.Strings(rest)
			onCycle(rest)
			out = append(out, rest...)
			return out
		}
		sort.Strings(ready)
		out = append(out, ready...)
		for _, n := range ready {
			delete(remaining, n)
		}
	}
	return out
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
