package specdiff

import (
	"math/rand"
	"strings"
	"testing"

	"scooter/internal/gen"
	"scooter/internal/parser"
	"scooter/internal/schema"
)

// TestDiffRoundTripProperty: for random spec pairs (A, B), the synthesized
// diff script applied to A converges canonically to B — modulo the
// explicitly reported ambiguities: an incomplete synthesis must carry a
// NoInitialiser report, never fail silently. Seeds are pinned so a failure
// reproduces; the suite runs under -race in CI.
func TestDiffRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		// Independent draws: coarse diffs (models appearing/disappearing).
		a := gen.RandomSchema(r)
		b := gen.RandomSchema(r)
		checkRoundTrip(t, seed, "independent", a, b)
		// Mutation chains: fine-grained diffs on a shared baseline.
		c := gen.MutateSchema(r, a)
		checkRoundTrip(t, seed, "mutated", a, c)
		checkRoundTrip(t, seed, "reverse", c, a)
	}
}

func checkRoundTrip(t *testing.T, seed int64, kind string, from, to *schema.Schema) {
	t.Helper()
	res, err := Diff(from, to)
	if err != nil {
		t.Fatalf("seed %d (%s): Diff: %v", seed, kind, err)
	}
	text := res.Script()
	if strings.Contains(text, "Weaken") {
		t.Fatalf("seed %d (%s): synthesized script uses Weaken:\n%s", seed, kind, text)
	}
	// The rendered script must survive the parser and mean the same thing.
	script, err := parser.ParseMigration(text)
	if err != nil {
		t.Fatalf("seed %d (%s): script does not re-parse: %v\n%s", seed, kind, err, text)
	}
	if len(script.Commands) != len(res.Commands) {
		t.Fatalf("seed %d (%s): %d commands rendered, %d parsed back", seed, kind, len(res.Commands), len(script.Commands))
	}
	for i := range script.Commands {
		if script.Commands[i].String() != res.Commands[i].String() {
			t.Fatalf("seed %d (%s): command %d changed across the parser round trip:\n%q\n%q",
				seed, kind, i, res.Commands[i], script.Commands[i])
		}
	}

	if !res.Complete {
		// Incompleteness is only permitted for the two declared reasons —
		// no synthesizable initialiser, or a structurally blocked
		// demotion — and must be reported, never silent.
		var reported bool
		for _, a := range res.Ambiguities {
			if a.Kind == NoInitialiser || a.Kind == DemotionBlocked {
				reported = true
			}
		}
		if !reported {
			t.Fatalf("seed %d (%s): incomplete diff without a NoInitialiser/DemotionBlocked report: %v", seed, kind, res.Ambiguities)
		}
		return
	}
	// Complete: applying the parsed-back script converges to the target.
	applied, err := Apply(from, script.Commands)
	if err != nil {
		t.Fatalf("seed %d (%s): apply: %v\n%s", seed, kind, err, text)
	}
	if got, want := Canonical(applied), Canonical(to); got != want {
		t.Fatalf("seed %d (%s): did not converge\n--- got ---\n%s--- want ---\n%s\n--- script ---\n%s",
			seed, kind, got, want, text)
	}
}
