package app

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint boots the application (which runs the 001 and 002
// migrations, so solver work happens) and exercises the read path, then
// asserts the /metrics exposition carries live series from every layer the
// workspace registry covers: solver, verify (incl. the verdict cache), and
// the ORM policy boundary.
func TestMetricsEndpoint(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := s.Seed(3, 2)

	get := func(path, userID string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if userID != "" {
			req.Header.Set("X-User-Id", userID)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/announcements", ""); rec.Code != http.StatusOK {
		t.Fatalf("GET /announcements: %d", rec.Code)
	}
	if rec := get("/profile", fmt.Sprint(int64(ids[0]))); rec.Code != http.StatusOK {
		t.Fatalf("GET /profile: %d", rec.Code)
	}

	rec := get("/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()

	// Each of these series must be present and non-zero: the migrations
	// ran strictness proofs (solver, verify, cache) and the page handlers
	// went through the policy boundary (ORM).
	for _, name := range []string{
		"scooter_solver_solves_total",
		"scooter_verify_proofs_total",
		"scooter_verify_cache_hits_total",
		"scooter_verify_cache_misses_total",
		"scooter_orm_reads_checked_total",
	} {
		val, ok := sampleValue(body, name)
		if !ok {
			t.Errorf("series %s missing from /metrics", name)
			continue
		}
		if val == "0" {
			t.Errorf("series %s is zero; exposition:\n%s", name, body)
		}
	}
}

// sampleValue finds the value of an unlabelled sample line "name value".
func sampleValue(body, name string) (string, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest, true
		}
	}
	return "", false
}
