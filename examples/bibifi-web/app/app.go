// Package app is a slice of the BIBIFI contest platform served over
// net/http with the policy-enforcing ORM — the substrate for the paper's
// §5.4 macro-benchmark. It exposes the two endpoints the paper measures:
//
//	GET /announcements  — contest announcements and the schedule
//	GET /profile        — the logged-in user's own profile
//
// Authentication is a demo-grade bearer token: `X-User-Id: <id>` selects
// the principal; requests without it run as Unauthenticated, exactly the
// middleware pattern described in §3.3.
package app

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	"scooter"
)

// Spec is the application schema and policies.
const Spec = `
AddStaticPrincipal(Admin);
AddStaticPrincipal(Unauthenticated);
CreateModel(@principal User {
  create: _ -> [Unauthenticated, Admin],
  delete: _ -> [Admin],
  ident: String { read: public, write: none },
  email: String { read: x -> [x, Admin], write: x -> [x] },
  school: String { read: x -> [x, Admin], write: x -> [x] },
  admin: Bool { read: public, write: _ -> [Admin] },
});
CreateModel(Contest {
  create: _ -> [Admin],
  delete: _ -> [Admin],
  title: String { read: public, write: _ -> [Admin] },
  buildStart: DateTime { read: public, write: _ -> [Admin] },
  buildEnd: DateTime { read: public, write: _ -> [Admin] },
});
CreateModel(Announcement {
  create: _ -> [Admin],
  delete: _ -> [Admin],
  contest: Id(Contest) { read: public, write: none },
  title: String { read: public, write: _ -> [Admin] },
  markdown: String { read: public, write: _ -> [Admin] },
  timestamp: DateTime { read: public, write: none },
});
`

// Migration002 re-states the contact-field policies. The restated
// policies equal the originals, so the migration is behaviourally a no-op
// — but Sidecar cannot know that without proving it, which makes the
// migration a realistic verification workload: four strictness proofs run
// on every fresh boot (email and school carry identical policies, so the
// later proofs hit the verdict cache).
const Migration002 = `
User::UpdateFieldPolicy(email, {
  read: x -> [x, Admin],
  write: x -> [x]
});
User::UpdateFieldPolicy(school, {
  read: x -> [x, Admin],
  write: x -> [x]
});
`

// Server is the BIBIFI web application. Exactly one of W (primary) and F
// (read-only replica) is set.
type Server struct {
	W   *scooter.Workspace
	F   *scooter.FollowerWorkspace
	mux *http.ServeMux
}

// princ returns a policy-checked handle for p against whichever workspace
// backs this server. On a replica the handle is read-only, but read
// policies are enforced exactly as on the primary.
func (s *Server) princ(p scooter.Principal) *scooter.Princ {
	if s.F != nil {
		return s.F.AsPrinc(p)
	}
	return s.W.AsPrinc(p)
}

var announcementsTmpl = template.Must(template.New("announcements").Parse(`<!doctype html>
<title>BIBIFI — Announcements</title>
<h1>Announcements</h1>
{{range .Announcements}}<article><h2>{{.Title}}</h2><p>{{.Body}}</p></article>
{{end}}
<h1>Schedule</h1>
<ul>{{range .Contests}}<li>{{.Title}}: {{.Start}} – {{.End}}</li>{{end}}</ul>
`))

var profileTmpl = template.Must(template.New("profile").Parse(`<!doctype html>
<title>BIBIFI — Profile</title>
<h1>{{.Ident}}</h1>
<dl><dt>Email</dt><dd>{{.Email}}</dd><dt>School</dt><dd>{{.School}}</dd></dl>
`))

// New builds the application on a fresh in-memory workspace, applying the
// schema migration.
func New() (*Server, error) { return Open("", scooter.DurabilityOptions{}) }

// Open builds the application. With a data directory, the workspace is
// backed by a write-ahead log there: previously durable state is recovered
// (including a migration interrupted by a crash, which resumes), and every
// later write is logged before the HTTP response acknowledges it. An empty
// dataDir gives the in-memory workspace New provides.
func Open(dataDir string, opts scooter.DurabilityOptions) (*Server, error) {
	var w *scooter.Workspace
	var err error
	if dataDir == "" {
		w = scooter.NewWorkspace()
	} else if w, err = scooter.OpenDurable(dataDir, opts); err != nil {
		return nil, err
	}
	// The named migrations replay the schema over recovered data: a fresh
	// directory applies them, a recovered one just advances the spec.
	if _, err := w.MigrateNamed("001_init", Spec); err != nil {
		return nil, err
	}
	// Sequential proofs let 002's alpha-equivalent policy pairs hit the
	// verdict cache (the second field's proofs reuse the first's verdicts).
	opts002 := scooter.DefaultOptions()
	opts002.Sequential = true
	if _, err := w.MigrateNamedOpts("002_policies", Migration002, opts002); err != nil {
		return nil, err
	}
	s := &Server{W: w, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

// OpenFollower builds the application as a read-only replica: the data
// directory mirrors the primary's write-ahead log (streamed from
// primaryAddr, the primary's -serve-replication address), and both the
// data and the schema's policies replicate with it. The replica serves
// the same read endpoints; it needs no migration of its own.
func OpenFollower(dataDir, primaryAddr string) (*Server, error) {
	fw, err := scooter.OpenFollower(dataDir, primaryAddr, scooter.FollowerOptions{})
	if err != nil {
		return nil, err
	}
	s := &Server{F: fw, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("/announcements", s.handleAnnouncements)
	s.mux.HandleFunc("/profile", s.handleProfile)
	s.mux.Handle("/metrics", s.MetricsHandler())
}

// MetricsHandler serves whichever workspace backs this server in the
// Prometheus text format.
func (s *Server) MetricsHandler() http.Handler {
	if s.F != nil {
		return s.F.MetricsHandler()
	}
	return s.W.MetricsHandler()
}

// Close releases whichever workspace backs the server. Idempotent.
func (s *Server) Close() error {
	if s.F != nil {
		return s.F.Close()
	}
	return s.W.Close()
}

// Seed inserts n users, one contest, and a set of announcements, and
// returns the created user ids. On a recovered database that is already
// seeded it inserts nothing and returns the existing user ids, so a
// restarted server keeps its data.
func (s *Server) Seed(users, announcements int) []scooter.ID {
	if existing, err := s.W.AsPrinc(scooter.Static("Admin")).Find("User"); err == nil && len(existing) > 0 {
		ids := make([]scooter.ID, 0, len(existing))
		for _, u := range existing {
			ids = append(ids, u.ID)
		}
		return ids
	}
	contest := s.W.InsertRaw("Contest", scooter.Doc{
		"title": "Fall Contest", "buildStart": int64(1_600_000_000), "buildEnd": int64(1_600_600_000),
	})
	for i := 0; i < announcements; i++ {
		s.W.InsertRaw("Announcement", scooter.Doc{
			"contest":   contest,
			"title":     fmt.Sprintf("Announcement %d", i),
			"markdown":  "The build round opens soon.",
			"timestamp": int64(1_600_000_000 + i),
		})
	}
	ids := make([]scooter.ID, users)
	for i := range ids {
		ids[i] = s.W.InsertRaw("User", scooter.Doc{
			"ident": fmt.Sprintf("user%d", i), "email": fmt.Sprintf("user%d@example.com", i),
			"school": "UCSD", "admin": false,
		})
	}
	return ids
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(rw http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(rw, r) }

// principal selects the request principal from the X-User-Id header.
func (s *Server) principal(r *http.Request) scooter.Principal {
	if v := r.Header.Get("X-User-Id"); v != "" {
		if id, err := strconv.ParseInt(v, 10, 64); err == nil {
			return scooter.Instance("User", scooter.ID(id))
		}
	}
	return scooter.Static("Unauthenticated")
}

func (s *Server) handleAnnouncements(rw http.ResponseWriter, r *http.Request) {
	pr := s.princ(s.principal(r))
	anns, err := pr.Find("Announcement")
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	contests, err := pr.Find("Contest")
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	type annView struct{ Title, Body string }
	type contestView struct {
		Title      string
		Start, End int64
	}
	data := struct {
		Announcements []annView
		Contests      []contestView
	}{}
	for _, a := range anns {
		title, _ := a.Get("title")
		body, _ := a.Get("markdown")
		data.Announcements = append(data.Announcements, annView{Title: str(title), Body: str(body)})
	}
	for _, c := range contests {
		title, _ := c.Get("title")
		start, _ := c.Get("buildStart")
		end, _ := c.Get("buildEnd")
		data.Contests = append(data.Contests, contestView{Title: str(title), Start: i64(start), End: i64(end)})
	}
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := announcementsTmpl.Execute(rw, data); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleProfile(rw http.ResponseWriter, r *http.Request) {
	p := s.principal(r)
	if p.Static != "" {
		// Unauthenticated users have no profile: 403, the production-mode
		// response the paper suggests for policy failures (§3.3).
		http.Error(rw, "Forbidden", http.StatusForbidden)
		return
	}
	pr := s.princ(p)
	obj, err := pr.FindByID("User", p.ID)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	if obj == nil {
		http.Error(rw, "Not Found", http.StatusNotFound)
		return
	}
	ident, _ := obj.Get("ident")
	email, _ := obj.Get("email")
	school, _ := obj.Get("school")
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	err = profileTmpl.Execute(rw, struct{ Ident, Email, School string }{
		Ident: str(ident), Email: str(email), School: str(school),
	})
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
	}
}

func str(v scooter.Value) string {
	s, _ := v.(string)
	return s
}

func i64(v scooter.Value) int64 {
	n, _ := v.(int64)
	return n
}
