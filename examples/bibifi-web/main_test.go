package main

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServesAndRecovers boots the server on an ephemeral port (-addr :0),
// hits it over HTTP, kills it without warning, and boots it again on the
// same -data-dir: the second run must recover the logged writes instead of
// reseeding. Skipped under -short: it builds and runs the real binary.
func TestServesAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "bibifi-web")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "data")

	// start launches the server and reads its banner up to the listen
	// address; the lines before it include the recovery report.
	start := func() (*exec.Cmd, string, string) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout // interleave; only the banner is parsed
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var banner strings.Builder
		addr := ""
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			banner.WriteString(line + "\n")
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				addr = strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("server never reported a listen address; output:\n%s", banner.String())
		}
		go io.Copy(io.Discard, stdout) // keep the pipe drained
		return cmd, addr, banner.String()
	}

	get := func(addr, path string) string {
		t.Helper()
		var lastErr error
		for i := 0; i < 50; i++ {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
			}
			return string(body)
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
		return ""
	}

	cmd, addr, banner := start()
	if strings.Contains(banner, "recovered") {
		t.Fatalf("fresh data dir claims recovery:\n%s", banner)
	}
	first := get(addr, "/announcements")
	// Crash: no shutdown hook runs, so the WAL alone carries the state.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd, addr, banner = start()
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	if !strings.Contains(banner, "recovered") {
		t.Fatalf("restart did not recover logged writes:\n%s", banner)
	}
	if second := get(addr, "/announcements"); second != first {
		t.Fatalf("announcements changed across crash:\n%s\n---\n%s", first, second)
	}
}

// TestFollowerServesReplicatedState boots a primary with -serve-replication
// and a second process with -follow, and checks that the replica serves the
// primary's pages from replicated state — including the policy-checked
// profile endpoint. Skipped under -short: it builds and runs the binary.
func TestFollowerServesReplicatedState(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "bibifi-web")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// start launches the binary and scans the banner for the listen address,
	// (on the primary) the replication address, and the first seeded user id.
	start := func(args ...string) (addr, repl, userID string) {
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		var banner strings.Builder
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			banner.WriteString(line + "\n")
			if i := strings.LastIndex(line, "replication on "); i >= 0 {
				repl = strings.TrimSpace(line[i+len("replication on "):])
			}
			if i := strings.Index(line, "(ids "); i >= 0 {
				rest := line[i+len("(ids "):]
				if j := strings.Index(rest, ".."); j >= 0 {
					// IDs render as "#10": keep only the number.
					userID = strings.TrimLeft(rest[:j], "#")
				}
			}
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				addr = strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
		if addr == "" {
			t.Fatalf("no listen address in output:\n%s", banner.String())
		}
		go io.Copy(io.Discard, stdout)
		return addr, repl, userID
	}

	get := func(addr, path, userID string) (int, string) {
		t.Helper()
		req, err := http.NewRequest("GET", "http://"+addr+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if userID != "" {
			req.Header.Set("X-User-Id", userID)
		}
		var lastErr error
		for i := 0; i < 50; i++ {
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, string(body)
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
		return 0, ""
	}

	primAddr, replAddr, userID := start(
		"-addr", "127.0.0.1:0",
		"-data-dir", filepath.Join(t.TempDir(), "primary"),
		"-serve-replication", "127.0.0.1:0")
	if replAddr == "" {
		t.Fatal("primary never reported its replication address")
	}
	if userID == "" {
		t.Fatal("primary never reported its seeded user ids")
	}
	follAddr, _, _ := start(
		"-addr", "127.0.0.1:0",
		"-data-dir", filepath.Join(t.TempDir(), "follower"),
		"-follow", replAddr)

	code, want := get(primAddr, "/announcements", "")
	if code != http.StatusOK {
		t.Fatalf("primary announcements: %d\n%s", code, want)
	}
	// The follower converges asynchronously: retry until its page matches
	// the primary's byte for byte.
	var got string
	for i := 0; i < 250; i++ {
		if _, got = get(follAddr, "/announcements", ""); got == want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got != want {
		t.Fatalf("follower never converged:\n%s\n---\n%s", want, got)
	}

	// Policy enforcement on the replica: a user reads their own profile,
	// an unauthenticated request is refused. Users are seeded after the
	// announcements, so retry until they replicate too.
	var prof string
	for i := 0; i < 250; i++ {
		if code, prof = get(follAddr, "/profile", userID); code == http.StatusOK {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code != http.StatusOK || !strings.Contains(prof, "@example.com") {
		t.Fatalf("follower profile: %d\n%s", code, prof)
	}
	if code, _ = get(follAddr, "/profile", ""); code != http.StatusForbidden {
		t.Fatalf("unauthenticated profile on follower: %d", code)
	}
}
