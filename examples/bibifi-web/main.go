// Command bibifi-web serves the BIBIFI slice.
//
//	go run ./examples/bibifi-web -addr :8080
//	curl localhost:8080/announcements
//	curl -H 'X-User-Id: 5' localhost:8080/profile
//
// With -data-dir the store is backed by a write-ahead log: kill the
// process, restart it, and the data (and any half-finished migration)
// recovers. -fsync selects the durability/throughput trade-off.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"scooter"
	"scooter/examples/bibifi-web/app"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	dataDir := flag.String("data-dir", "", "write-ahead log directory (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "fsync policy: always (every write), batch (every 64 writes or 10ms), never (rotation/shutdown only)")
	flag.Parse()

	opts, err := durabilityOptions(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := app.Open(*dataDir, opts)
	if err != nil {
		log.Fatal(err)
	}
	if n := srv.W.Replayed(); n > 0 {
		fmt.Printf("recovered %d logged writes from %s\n", n, *dataDir)
	}
	ids := srv.Seed(10, 5)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d users (ids %v..%v); listening on %v\n", len(ids), ids[0], ids[len(ids)-1], ln.Addr())
	err = http.Serve(ln, srv)
	srv.W.Close()
	log.Fatal(err)
}

// durabilityOptions maps the -fsync flag onto WAL options.
func durabilityOptions(mode string) (scooter.DurabilityOptions, error) {
	switch mode {
	case "always":
		return scooter.DurabilityOptions{SyncEvery: 1}, nil
	case "batch":
		return scooter.DurabilityOptions{SyncEvery: 64}, nil
	case "never":
		return scooter.DurabilityOptions{SyncEvery: -1}, nil
	}
	return scooter.DurabilityOptions{}, fmt.Errorf("bibifi-web: unknown -fsync mode %q (want always, batch, or never)", mode)
}
