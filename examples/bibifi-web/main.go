// Command bibifi-web serves the BIBIFI slice on :8080.
//
//	go run ./examples/bibifi-web
//	curl localhost:8080/announcements
//	curl -H 'X-User-Id: 5' localhost:8080/profile
package main

import (
	"fmt"
	"log"
	"net/http"

	"scooter/examples/bibifi-web/app"
)

func main() {
	srv, err := app.New()
	if err != nil {
		log.Fatal(err)
	}
	ids := srv.Seed(10, 5)
	fmt.Printf("seeded %d users (ids %v..%v); listening on :8080\n", len(ids), ids[0], ids[len(ids)-1])
	log.Fatal(http.ListenAndServe(":8080", srv))
}
