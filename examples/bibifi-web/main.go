// Command bibifi-web serves the BIBIFI slice.
//
//	go run ./examples/bibifi-web -addr :8080
//	curl localhost:8080/announcements
//	curl -H 'X-User-Id: 5' localhost:8080/profile
//
// With -data-dir the store is backed by a write-ahead log: kill the
// process, restart it, and the data (and any half-finished migration)
// recovers. -fsync selects the durability/throughput trade-off.
//
// /metrics serves the workspace's registry in the Prometheus text format;
// -metrics-addr additionally exposes it on a separate listener so scrapers
// stay off the application port.
//
// Replication: a durable primary streams its log to read replicas.
//
//	bibifi-web -data-dir p -serve-replication :7070   # primary
//	bibifi-web -data-dir f -follow localhost:7070     # read-only replica
//
// The replica serves the same endpoints from replicated state; read
// policies are enforced on its side too, and writes are refused.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"scooter"
	"scooter/examples/bibifi-web/app"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	dataDir := flag.String("data-dir", "", "write-ahead log directory (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "fsync policy: always (every write), batch (every 64 writes or 10ms), never (rotation/shutdown only)")
	follow := flag.String("follow", "", "run as a read-only replica of a primary's -serve-replication address (requires -data-dir)")
	replAddr := flag.String("serve-replication", "", "stream the write-ahead log to replicas on this address (requires -data-dir)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (separate listener; empty = /metrics on -addr only)")
	flag.Parse()

	if *follow != "" {
		if *dataDir == "" {
			log.Fatal("bibifi-web: -follow needs -data-dir for the mirrored log")
		}
		srv, err := app.OpenFollower(*dataDir, *follow)
		if err != nil {
			log.Fatal(err)
		}
		serveMetrics(*metricsAddr, srv)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replicating from %s; listening on %v\n", *follow, ln.Addr())
		err = http.Serve(ln, srv)
		srv.Close()
		log.Fatal(err)
	}

	opts, err := durabilityOptions(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := app.Open(*dataDir, opts)
	if err != nil {
		log.Fatal(err)
	}
	if n := srv.W.Replayed(); n > 0 {
		fmt.Printf("recovered %d logged writes from %s\n", n, *dataDir)
	}
	ids := srv.Seed(10, 5)
	if *replAddr != "" {
		if *dataDir == "" {
			log.Fatal("bibifi-web: -serve-replication needs -data-dir (replication streams the write-ahead log)")
		}
		rs, err := srv.W.ServeReplication(*replAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replication on %v\n", rs.Addr())
	}
	serveMetrics(*metricsAddr, srv)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d users (ids %v..%v); listening on %v\n", len(ids), ids[0], ids[len(ids)-1], ln.Addr())
	err = http.Serve(ln, srv)
	srv.Close()
	log.Fatal(err)
}

// serveMetrics exposes the server's metrics registry on its own listener
// (scrapers stay off the application port); a no-op when addr is empty.
func serveMetrics(addr string, srv *app.Server) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", srv.MetricsHandler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics on http://%v/metrics\n", ln.Addr())
	go func() { log.Fatal(http.Serve(ln, mux)) }()
}

// durabilityOptions maps the -fsync flag onto WAL options.
func durabilityOptions(mode string) (scooter.DurabilityOptions, error) {
	switch mode {
	case "always":
		return scooter.DurabilityOptions{SyncEvery: 1}, nil
	case "batch":
		return scooter.DurabilityOptions{SyncEvery: 64}, nil
	case "never":
		return scooter.DurabilityOptions{SyncEvery: -1}, nil
	}
	return scooter.DurabilityOptions{}, fmt.Errorf("bibifi-web: unknown -fsync mode %q (want always, batch, or never)", mode)
}
