// Visit Day: the Rails case study driven through the *generated* typed
// ORM. The models package was emitted by `scooter gen` from the Visit Days
// corpus: struct shapes mirror the schema, so a schema migration that
// removes or retypes a field breaks this file at compile time — the "type
// errors for free" property of §2.2.
//
//	go run ./examples/visitday
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"scooter"
	"scooter/examples/visitday/models"
)

func main() {
	w := buildWorkspace()

	// Administrators bootstrap accounts; the Login principal is the
	// authentication middleware.
	login := w.AsPrinc(models.Login())
	anon := w.AsPrinc(models.Unauthenticated())

	adminID, err := models.Users(anon).Insert(models.UserData{
		Email: "chair@university.edu", PasswordDigest: "x", Admin: true,
		ResetToken: scooter.NoneOpt[string](), ResetSentAt: scooter.NoneOpt[int64](),
	})
	must(err)
	admin := w.AsPrinc(scooter.Instance("User", adminID))

	studentAcct, err := models.Users(anon).Insert(models.UserData{
		Email: "visitor@gmail.com", PasswordDigest: "y", Admin: false,
		ResetToken: scooter.NoneOpt[string](), ResetSentAt: scooter.NoneOpt[int64](),
	})
	must(err)

	studentID, err := models.Students(admin).Insert(models.StudentData{
		Account: studentAcct, Name: "Sam Visitor", Interests: "PL, systems",
		Visiting: true, Arrival: 1_552_600_000,
	})
	must(err)
	facultyID, err := models.Facultys(admin).Insert(models.FacultyData{
		Account: adminID, Name: "Prof. Example", Department: "CSE", Office: "EBU3B 4110",
	})
	must(err)
	_, err = models.Meetings(admin).Insert(models.MeetingData{
		Student: studentID, Faculty: facultyID,
		StartTime: 1_552_650_000, EndTime: 1_552_652_700, Location: "EBU3B 4110",
	})
	must(err)

	// The student sees their own schedule; meeting times are hidden from
	// other unprivileged users by policy, not by controller code.
	student := w.AsPrinc(scooter.Instance("User", studentAcct))
	meetings, err := models.Meetings(student).Find()
	must(err)
	fmt.Println("student's schedule:")
	for _, m := range meetings {
		if m.StartTime == nil {
			fmt.Printf("  meeting %v: time hidden\n", m.ID)
			continue
		}
		fmt.Printf("  meeting %v: %d - %d at %s\n", m.ID, *m.StartTime, *m.EndTime, deref(m.Location))
	}

	// The Login principal resets a password token; no one else can read it.
	must(models.Users(login).Update(studentAcct, models.UserPatch{
		ResetToken: ptr(scooter.SomeOpt("tok-123")),
	}))
	self, err := models.Users(login).ByID(studentAcct)
	must(err)
	fmt.Printf("login middleware sees resetToken present=%v\n", self.ResetToken.Present)
	other, err := models.Users(student).ByID(adminID)
	must(err)
	fmt.Printf("student sees admin's email: %v (nil means policy-stripped)\n", other.Email)
}

// buildWorkspace replays the Visit Days corpus migrations.
func buildWorkspace() *scooter.Workspace {
	w := scooter.NewWorkspace()
	dir := corpusDir()
	entries, err := os.ReadDir(dir)
	must(err)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		must(err)
		must(w.Migrate(string(data)))
	}
	return w
}

func corpusDir() string {
	for _, dir := range []string{
		"internal/casestudies/corpus/visitday",
		"../../internal/casestudies/corpus/visitday",
	} {
		if _, err := os.Stat(dir); err == nil {
			return dir
		}
	}
	log.Fatal("run from the repository root: go run ./examples/visitday")
	return ""
}

func deref(s *string) string {
	if s == nil {
		return "?"
	}
	return *s
}

func ptr[T any](v T) *T { return &v }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
