// Chitter: the paper's running example (§2), end to end. The app stores
// public 42-character peeps next to sensitive user data, and both of the
// paper's unsafe migrations — the bio schema migration that leaks pronouns
// and the moderator policy migration that opens bios to everyone — are
// rejected by Sidecar with counterexamples before they can run.
//
//	go run ./examples/chitter
package main

import (
	"errors"
	"fmt"
	"log"

	"scooter"
)

func main() {
	w := scooter.NewWorkspace()

	// The Chitter schema of Figure 1, built through a migration.
	must(w.Migrate(`
AddStaticPrincipal(Unauthenticated);
CreateModel(@principal User {
  create: _ -> [Unauthenticated],
  delete: none,
  name: String {
    read: public,
    write: u -> [u] + User::Find({isAdmin: true}) },
  email: String {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> [u] + User::Find({isAdmin: true}) },
  pronouns: String {
    read: u -> [u] + u.followers,
    write: u -> [u] + User::Find({isAdmin: true}) },
  isAdmin: Bool {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> User::Find({isAdmin: true}) },
  followers: Set(Id(User)) {
    read: u -> [u] + u.followers,
    write: u -> [u] + User::Find({isAdmin: true}) },
});
CreateModel(Peep {
  create: p -> [p.author],
  delete: p -> [p.author] + User::Find({isAdmin: true}),
  author: Id(User) { read: public, write: none },
  body: String { read: public, write: p -> [p.author] },
});
`))

	seedUsers(w)

	// ---- §2.1: the unsafe schema migration ----
	fmt.Println("== bio migration that leaks pronouns ==")
	err := w.Migrate(`
User::AddField(bio : String {
  read: public,
  write: u -> [u] + User::Find({isAdmin:true})
}, u -> "I'm " + u.name + "(" + u.pronouns + ")");
`)
	var unsafeErr *scooter.UnsafeError
	if !errors.As(err, &unsafeErr) {
		log.Fatalf("expected the verifier to reject the migration, got %v", err)
	}
	fmt.Println(unsafeErr)

	fmt.Println("== fixed bio migration (no pronouns) ==")
	must(w.Migrate(`
User::AddField(bio : String {
  read: public,
  write: u -> [u] + User::Find({isAdmin:true})
}, u -> "I'm " + u.name);
`))
	fmt.Println("accepted; existing rows populated")

	// ---- §2.2: the unsafe policy migration ----
	fmt.Println("\n== moderator migration with the >= 0 typo ==")
	err = w.Migrate(`
User::AddField(
  adminLevel : I64 {
    read: u -> [u] + User::Find({adminLevel: 2}),
    write: u -> User::Find({adminLevel: 2})
  }, u -> if u.isAdmin then 2 else 0);
User::UpdateFieldPolicy(email, {
  read: u -> [u] + User::Find({adminLevel: 2}),
  write: u -> [u] + User::Find({adminLevel: 2})
});
User::UpdateFieldWritePolicy(bio,
  u -> [u] + User::Find({adminLevel >= 0}));
`)
	if !errors.As(err, &unsafeErr) {
		log.Fatalf("expected the verifier to reject the migration, got %v", err)
	}
	fmt.Println(unsafeErr)

	fmt.Println("== moderator migration with an explicit, audited weakening ==")
	must(w.Migrate(`
User::AddField(
  adminLevel : I64 {
    read: u -> [u] + User::Find({adminLevel: 2}),
    write: u -> User::Find({adminLevel: 2})
  }, u -> if u.isAdmin then 2 else 0);
User::UpdateFieldPolicy(email, {
  read: u -> [u] + User::Find({adminLevel: 2}),
  write: u -> [u] + User::Find({adminLevel: 2})
});
User::WeakenFieldWritePolicy(bio,
  u -> [u] + User::Find({adminLevel > 0}),
  "Reason: allow moderators to update bios.");
User::UpdateFieldWritePolicy(name, u -> [u] + User::Find({adminLevel: 2}));
User::UpdateFieldWritePolicy(pronouns, u -> [u] + User::Find({adminLevel: 2}));
User::UpdateFieldWritePolicy(followers, u -> [u] + User::Find({adminLevel: 2}));
Peep::UpdatePolicy(delete, p -> [p.author] + User::Find({adminLevel: 2}));
User::RemoveField(isAdmin);
`))
	fmt.Println("accepted; isAdmin replaced by adminLevel via prior definitions (§4):")
	fmt.Println("every rewritten policy was proven equivalent to its isAdmin form")
	fmt.Println("\nfinal specification:")
	fmt.Println(w.SpecText())
}

func seedUsers(w *scooter.Workspace) {
	anon := w.AsPrinc(scooter.Static("Unauthenticated"))
	mk := func(name string, admin bool) scooter.ID {
		id, err := anon.Insert("User", scooter.Doc{
			"name": name, "email": name + "@chitter.io", "pronouns": "they/them",
			"isAdmin": admin, "followers": []scooter.Value{},
		})
		must(err)
		return id
	}
	alice := mk("alice", false)
	bob := mk("bob", false)
	mk("root", true)

	// Bob posts a peep and follows alice.
	bobP := w.AsPrinc(scooter.Instance("User", bob))
	if _, err := bobP.Insert("Peep", scooter.Doc{"author": bob, "body": "hello chitter"}); err != nil {
		log.Fatal(err)
	}
	aliceP := w.AsPrinc(scooter.Instance("User", alice))
	must(aliceP.Update("User", alice, scooter.Doc{"followers": []scooter.Value{bob}}))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
