// Quickstart: declare a model with policies, migrate, and watch the
// verifier reject an unsafe change — the complete Scooter & Sidecar loop
// in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scooter"
)

func main() {
	w := scooter.NewWorkspace()

	// 1. Bootstrap the schema. Everything goes through migrations — there
	// is no separate schema file to hand-edit.
	must(w.Migrate(`
AddStaticPrincipal(Unauthenticated);
CreateModel(@principal User {
  create: _ -> [Unauthenticated],
  delete: none,
  name:  String { read: public,   write: u -> [u] },
  email: String { read: u -> [u], write: u -> [u] },
});
`))
	fmt.Println("schema after bootstrap:")
	fmt.Println(w.SpecText())

	// 2. Use the policy-enforcing ORM. Reads strip fields the principal
	// may not see; writes are rejected with a policy error.
	anon := w.AsPrinc(scooter.Static("Unauthenticated"))
	aliceID, err := anon.Insert("User", scooter.Doc{"name": "alice", "email": "alice@example.com"})
	must(err)
	bobID, err := anon.Insert("User", scooter.Doc{"name": "bob", "email": "bob@example.com"})
	must(err)

	bob := w.AsPrinc(scooter.Instance("User", bobID))
	obj, err := bob.FindByID("User", aliceID)
	must(err)
	name, _ := obj.Get("name")
	_, canSeeEmail := obj.Get("email")
	fmt.Printf("bob reads alice: name=%v, email visible=%v\n\n", name, canSeeEmail)

	// 3. An unsafe migration: copying the private email into a public
	// display field. Sidecar rejects it before anything executes and
	// prints a witness database.
	err = w.Migrate(`
User::AddField(displayName : String {
  read: public,
  write: u -> [u]
}, u -> u.name + " <" + u.email + ">");
`)
	fmt.Println("unsafe migration rejected:")
	fmt.Println(err)

	// 4. The fixed migration verifies and executes: existing rows are
	// populated by the initialiser.
	must(w.Migrate(`
User::AddField(displayName : String {
  read: public,
  write: u -> [u]
}, u -> u.name);
`))
	obj, err = bob.FindByID("User", aliceID)
	must(err)
	display, _ := obj.Get("displayName")
	fmt.Printf("\nafter the fixed migration, alice's displayName = %v\n", display)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
