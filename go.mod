module scooter

go 1.22
