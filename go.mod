module scooter

go 1.23
