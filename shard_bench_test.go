package scooter_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scooter"
)

// BenchmarkShardedReplicatedWrites measures aggregate durable, replicated
// write throughput as shards are added, under the group-commit regime of
// the PR 4 replicated-write workload (SyncEvery: 64 — records batch into
// shared fsyncs). Each shard serves one serial client stream — the
// scale-out shape: adding a shard adds a primary WAL, an fsync pipeline,
// and a replication stream — and ships its log to its own follower; the
// clock stops only after every follower has durably mirrored and applied
// every record.
//
// The scaling resource is per-shard fsync/commit pipelines overlapping in
// the IO queue (and, on multi-core hosts, per-shard committers and
// replication servers on separate cores). Results and the single-core
// ceiling analysis are in EXPERIMENTS.md.
func BenchmarkShardedReplicatedWrites(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShardedWrites(b, n)
		})
	}
}

func benchShardedWrites(b *testing.B, n int) {
	sw, err := scooter.OpenSharded(b.TempDir(), n, scooter.DurabilityOptions{
		SyncEvery:         64,
		CompactAfterBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sw.Close()

	followers := make([]*scooter.FollowerWorkspace, n)
	for i := 0; i < n; i++ {
		srv, err := sw.Shard(i).ServeReplication("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		// Followers mirror with batched fsyncs: the primary's fsync is the
		// durability point under test, and per-record follower fsyncs would
		// contend for the same journal.
		fopts := fastFollowerOpts()
		fopts.WAL = scooter.DurabilityOptions{SyncEvery: 256, CompactAfterBytes: -1}
		f, err := scooter.OpenFollower(b.TempDir(), srv.Addr().String(), fopts)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		followers[i] = f
	}

	var wg sync.WaitGroup
	b.ResetTimer()
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			w := sw.Shard(s)
			for i := s; i < b.N; i += n {
				w.InsertRaw("users", scooter.Doc{"name": fmt.Sprintf("u%d", i), "age": int64(i)})
			}
		}(s)
	}
	wg.Wait()
	if err := sw.Sync(); err != nil {
		b.Fatal(err)
	}
	for i, f := range followers {
		if err := f.WaitForLSN(sw.Shard(i).DurableLSN(), 120*time.Second); err != nil {
			b.Fatalf("follower %d: %v", i, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "writes/s")
}
