package models

import "time"

// Timestamps is an embeddable helper, not a model of its own.
//
//scooter:skip
type Timestamps struct {
	CreatedAt time.Time  `db:"created_at" policy:"read: public; write: none"`
	UpdatedAt *time.Time `db:"updated_at" policy:"read: public; write: none"`
}

// User is the domain's dynamic principal. Anyone may sign up
// (create: public, the Unauthenticated flow); only the user themselves
// may delete the account.
//
//scooter:principal
//scooter:create public
//scooter:delete u -> [u]
type User struct {
	ID           int64  `db:"id"`
	Name         string `db:"name" policy:"read: public; write: u -> [u]"`
	Email        string `scooter:"email" policy:"read: u -> [u]; write: u -> [u]"`
	PasswordHash string `db:"password_hash" policy:"read: none; write: u -> [u]"`
	Admin        bool   `policy:"read: public; write: none"`
	Timestamps
}
