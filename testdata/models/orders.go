package models

import "time"

// Order references its buyer and carries a mixed bag of field shapes:
// a model reference, an optional free-text note only the buyer can see,
// a slice of model references, and one deliberately unmappable Go type.
//
//scooter:create public
//scooter:delete none
type Order struct {
	ID       int64             `db:"id"`
	Buyer    User              `db:"buyer" policy:"read: public; write: none"`
	Total    float64           `db:"total" policy:"read: public; write: none"`
	Note     *string           `db:"note" policy:"read: o -> [o.buyer]; write: o -> [o.buyer]"`
	Watchers []User            `db:"watchers" policy:"read: public; write: none"`
	PlacedAt time.Time         `db:"placed_at" policy:"read: public; write: none"`
	Meta     map[string]string `db:"meta"` // no Scooter mapping: skipped with a warning

	refcount int // unexported: implementation detail, never imported

	Timestamps
}
