// Package models is the seed corpus for struct2schema: a small
// users/orders/audit-log domain exercising mixed struct tags, embedded
// structs, pointer and slice fields, model references, and policy
// annotations. It only has to parse — struct2schema never compiles it.
//
//scooter:static-principal Unauthenticated
//scooter:static-principal AuditService
package models
