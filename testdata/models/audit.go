package models

// AuditLog is append-only: anyone's actions land here, but only the
// audit service principal reads the trail back.
//
//scooter:create public
//scooter:delete none
type AuditLog struct {
	ID      int64  `db:"id"`
	Actor   *User  `db:"actor" policy:"read: _ -> [AuditService]; write: none"`
	Action  string `db:"action" policy:"read: _ -> [AuditService]; write: none"`
	Payload []byte `db:"payload" policy:"read: _ -> [AuditService]; write: none"`
}
