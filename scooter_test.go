package scooter_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"scooter"
)

// bootstrapChitter builds the Chitter workspace used across facade tests.
func bootstrapChitter(t testing.TB) *scooter.Workspace {
	t.Helper()
	w := scooter.NewWorkspace()
	err := w.Migrate(`
AddStaticPrincipal(Unauthenticated);
CreateModel(@principal User {
  create: _ -> [Unauthenticated],
  delete: none,
  name: String { read: public, write: u -> [u] + User::Find({isAdmin: true}) },
  email: String {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> [u] },
  pronouns: String {
    read: u -> [u] + u.followers,
    write: u -> [u] },
  isAdmin: Bool {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> User::Find({isAdmin: true}) },
  followers: Set(Id(User)) {
    read: u -> [u] + u.followers,
    write: u -> [u] },
});
CreateModel(Peep {
  create: p -> [p.author],
  delete: p -> [p.author] + User::Find({isAdmin: true}),
  author: Id(User) { read: public, write: none },
  body: String { read: public, write: p -> [p.author] },
});
`)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkspaceLifecycle(t *testing.T) {
	w := bootstrapChitter(t)
	if got := len(w.Models()); got != 2 {
		t.Fatalf("models: %d", got)
	}
	if got := w.StaticPrincipals(); len(got) != 1 || got[0] != "Unauthenticated" {
		t.Fatalf("statics: %v", got)
	}
	// The spec text reloads into an equivalent workspace.
	w2, err := scooter.LoadSpec(w.SpecText())
	if err != nil {
		t.Fatalf("LoadSpec: %v\n%s", err, w.SpecText())
	}
	if len(w2.Models()) != 2 {
		t.Fatal("reloaded workspace differs")
	}
}

func TestEndToEndEnforcement(t *testing.T) {
	w := bootstrapChitter(t)
	anon := w.AsPrinc(scooter.Static("Unauthenticated"))
	aliceID, err := anon.Insert("User", scooter.Doc{
		"name": "alice", "email": "a@x", "pronouns": "she/her",
		"isAdmin": false, "followers": []scooter.Value{},
	})
	if err != nil {
		t.Fatal(err)
	}
	bobID, err := anon.Insert("User", scooter.Doc{
		"name": "bob", "email": "b@x", "pronouns": "he/him",
		"isAdmin": false, "followers": []scooter.Value{},
	})
	if err != nil {
		t.Fatal(err)
	}
	alice := w.AsPrinc(scooter.Instance("User", aliceID))
	bob := w.AsPrinc(scooter.Instance("User", bobID))

	// Bob cannot see alice's email.
	obj, err := bob.FindByID("User", aliceID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obj.Get("email"); ok {
		t.Error("email must be stripped")
	}
	// Alice posts a peep; bob cannot edit it.
	peep, err := alice.Insert("Peep", scooter.Doc{"author": aliceID, "body": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	err = bob.Update("Peep", peep, scooter.Doc{"body": "hacked"})
	var perr *scooter.PolicyError
	if !errors.As(err, &perr) {
		t.Fatalf("expected PolicyError, got %v", err)
	}
}

func TestMigrateRejectsLeak(t *testing.T) {
	w := bootstrapChitter(t)
	err := w.Migrate(`
User::AddField(bio : String {
  read: public,
  write: u -> [u]
}, u -> u.pronouns);
`)
	if err == nil {
		t.Fatal("leaky migration accepted")
	}
	var uerr *scooter.UnsafeError
	if !errors.As(err, &uerr) {
		t.Fatalf("error type %T", err)
	}
	if uerr.Result == nil || uerr.Result.Counterexample == nil {
		t.Fatal("missing counterexample")
	}
	// Schema unchanged: the failed migration had no effect.
	if strings.Contains(w.SpecText(), "bio") {
		t.Error("failed migration mutated the spec")
	}
}

func TestCheckPolicyStrictnessAPI(t *testing.T) {
	w := bootstrapChitter(t)
	ce, err := w.CheckPolicyStrictness("User",
		`u -> [u]`,
		`public`)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("public is weaker than [u]; expected counterexample")
	}
	if !strings.Contains(ce.String(), "Principal:") {
		t.Errorf("counterexample: %s", ce)
	}
	ce, err = w.CheckPolicyStrictness("User", `public`, `u -> [u]`)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("strengthening is safe, got:\n%s", ce)
	}
}

func TestGenerateORMFromWorkspace(t *testing.T) {
	w := bootstrapChitter(t)
	src, err := w.GenerateORM("chitterorm")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package chitterorm", "type User struct", "type PeepHandle"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated ORM missing %q", want)
		}
	}
}

func TestFilterHelpers(t *testing.T) {
	w := bootstrapChitter(t)
	anon := w.AsPrinc(scooter.Static("Unauthenticated"))
	for i, name := range []string{"a", "b", "c"} {
		if _, err := anon.Insert("User", scooter.Doc{
			"name": name, "email": name, "pronouns": "", "isAdmin": i == 0,
			"followers": []scooter.Value{},
		}); err != nil {
			t.Fatal(err)
		}
	}
	objs, err := anon.Find("User", scooter.Eq("name", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("find by name: %d", len(objs))
	}
}

func TestMigrateNamedJournal(t *testing.T) {
	w := scooter.NewWorkspace()
	boot := `
CreateModel(@principal User {
  create: public,
  delete: none,
  name: String { read: public, write: u -> [u] },
});
`
	applied, err := w.MigrateNamed("001_bootstrap", boot)
	if err != nil || !applied {
		t.Fatalf("first application: applied=%v err=%v", applied, err)
	}
	// Re-running the exact script is a no-op.
	applied, err = w.MigrateNamed("001_bootstrap", boot)
	if err != nil || applied {
		t.Fatalf("re-application: applied=%v err=%v", applied, err)
	}
	// A different script under the same name is rejected.
	_, err = w.MigrateNamed("001_bootstrap", boot+"\n# edited")
	if err == nil || !strings.Contains(err.Error(), "different content") {
		t.Fatalf("edited applied script: %v", err)
	}
	// A fresh name proceeds.
	applied, err = w.MigrateNamed("002_bio", `
User::AddField(bio: String { read: public, write: u -> [u] }, _ -> "");
`)
	if err != nil || !applied {
		t.Fatalf("second migration: applied=%v err=%v", applied, err)
	}
	entries := w.AppliedMigrations()
	if len(entries) != 2 || entries[0].Name != "001_bootstrap" || entries[1].Name != "002_bio" {
		t.Fatalf("journal: %+v", entries)
	}
	if entries[1].Commands != 1 || entries[1].AppliedAt == 0 || entries[1].Hash == "" {
		t.Fatalf("journal entry fields: %+v", entries[1])
	}
	// A failed migration is not journaled.
	_, err = w.MigrateNamed("003_broken", `
User::AddField(copy: String { read: public, write: u -> [u] }, u -> u.ghost);
`)
	if err == nil {
		t.Fatal("migration referencing a missing field must fail")
	}
	if got := len(w.AppliedMigrations()); got != 2 {
		t.Fatalf("failed migration must not be journaled: %d entries", got)
	}
	// The failed name remains available for the corrected script.
	applied, err = w.MigrateNamed("003_broken", `
User::AddField(copy: String { read: public, write: u -> [u] }, u -> u.bio);
`)
	if err != nil || !applied {
		t.Fatalf("corrected script under the failed name: applied=%v err=%v", applied, err)
	}
}

func TestSaveLoadState(t *testing.T) {
	w := bootstrapChitter(t)
	anon := w.AsPrinc(scooter.Static("Unauthenticated"))
	aliceID, err := anon.Insert("User", scooter.Doc{
		"name": "alice", "email": "a@x", "pronouns": "she/her",
		"isAdmin": false, "followers": []scooter.Value{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.MigrateNamed("002_bio", `
User::AddField(bio: String { read: public, write: u -> [u] }, u -> "I'm " + u.name);
`); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := w.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := scooter.LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Data, schema, and journal all survive.
	obj, err := w2.AsPrinc(scooter.Instance("User", aliceID)).FindByID("User", aliceID)
	if err != nil || obj == nil {
		t.Fatalf("restore lookup: %v %v", obj, err)
	}
	bio, ok := obj.Get("bio")
	if !ok || bio != "I'm alice" {
		t.Fatalf("bio after restore: %v (%v)", bio, ok)
	}
	if got := w2.AppliedMigrations(); len(got) != 1 || got[0].Name != "002_bio" {
		t.Fatalf("journal after restore: %+v", got)
	}
	// Re-running the applied migration stays a no-op after restore.
	applied, err := w2.MigrateNamed("002_bio", `
User::AddField(bio: String { read: public, write: u -> [u] }, u -> "I'm " + u.name);
`)
	if err != nil || applied {
		t.Fatalf("journal idempotence after restore: applied=%v err=%v", applied, err)
	}
	// Policies still enforce.
	other, err := w2.AsPrinc(scooter.Static("Unauthenticated")).FindByID("User", aliceID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.Get("email"); ok {
		t.Fatal("email must stay hidden after restore")
	}
}
