// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Run with:
//
//	go test -bench=. -benchmem
//
// Mapping to the paper:
//
//	BenchmarkFigure5_*  — §5.1 expressiveness table (corpus verification)
//	BenchmarkSec52_*    — §5.2 unsafe-migration detection
//	BenchmarkSec53_*    — §5.3 verification speed (per study, per command)
//	BenchmarkSec54_*    — §5.4 macro-benchmark (/announcements, /profile)
//	BenchmarkFigure6_*  — §5.4 micro-benchmark (create post / view friend
//	                      posts × unchecked / hand-checked / Scooter)
//
// Absolute numbers differ from the paper (its substrate is MongoDB + Z3 on
// a 2016 desktop; ours is an in-memory store + a from-scratch SMT solver);
// EXPERIMENTS.md compares shapes.
package scooter_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"scooter/examples/bibifi-web/app"
	"scooter/internal/casestudies"
	"scooter/internal/eval"
	"scooter/internal/migrate"
	"scooter/internal/obs"
	"scooter/internal/orm"
	"scooter/internal/parser"
	"scooter/internal/policyc"
	"scooter/internal/schema"
	"scooter/internal/store"
	"scooter/internal/typer"
	"scooter/internal/verify"
)

// ---- Figure 5: expressiveness (corpus verifies end to end) ----

func BenchmarkFigure5_Expressiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := casestudies.Metrics()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", casestudies.FormatFigure5(rows))
		}
	}
}

// ---- §5.2: unsafe-migration detection ----

func BenchmarkSec52_UnsafeDetection(b *testing.B) {
	for _, c := range casestudies.UnsafeCases() {
		b.Run(c.Key, func(b *testing.B) {
			s := mustSchema(b, c.Spec)
			script, err := parser.ParseMigration(c.Migration)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := migrate.Verify(s, script, migrate.DefaultOptions()); err == nil {
					b.Fatal("unsafe migration accepted")
				}
			}
		})
	}
}

// ---- §5.3: verification speed ----

// BenchmarkSec53_VerifySpeed_Study times verifying each case study's full
// migration history (the paper: fastest migration 10.3ms, slowest 88.8ms).
// Parsing and type-checking setup is hoisted out of the timed loop so the
// benchmark isolates verification time, as §5.3 intends.
func BenchmarkSec53_VerifySpeed_Study(b *testing.B) {
	studies, err := casestudies.AllStudies()
	if err != nil {
		b.Fatal(err)
	}
	for _, study := range studies {
		b.Run(study.Key, func(b *testing.B) {
			scripts, err := study.ParseScripts()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := study.RunScripts(scripts, migrate.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec53_VerifySpeed_Study_Cached is the warm-cache variant: one
// verdict cache is shared across iterations, modelling corpus replay (or a
// CI fleet re-verifying migration histories) where structurally identical
// strictness queries recur. Compare against BenchmarkSec53_VerifySpeed_Study
// for the cold/warm speedup reported in EXPERIMENTS.md.
func BenchmarkSec53_VerifySpeed_Study_Cached(b *testing.B) {
	studies, err := casestudies.AllStudies()
	if err != nil {
		b.Fatal(err)
	}
	for _, study := range studies {
		b.Run(study.Key, func(b *testing.B) {
			scripts, err := study.ParseScripts()
			if err != nil {
				b.Fatal(err)
			}
			opts := migrate.DefaultOptions()
			opts.Cache = verify.NewCache(0)
			stats := &verify.Stats{}
			opts.Stats = stats
			// Warm the cache with one untimed replay.
			if _, _, err := study.RunScripts(scripts, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := study.RunScripts(scripts, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.Logf("%s: %s", study.Key, stats.Snapshot())
		})
	}
}

// BenchmarkSec53_VerifySpeed_Study_Metrics is the cached replay with the
// full observability stack attached on top of everything the Cached
// variant carries — verify + solver metric sets in a live registry —
// so the delta against BenchmarkSec53_VerifySpeed_Study_Cached is
// attributable purely to the obs layer (EXPERIMENTS.md reports it
// against a <2% target).
func BenchmarkSec53_VerifySpeed_Study_Metrics(b *testing.B) {
	studies, err := casestudies.Studies()
	if err != nil {
		b.Fatal(err)
	}
	for _, study := range studies {
		b.Run(study.Key, func(b *testing.B) {
			scripts, err := study.ParseScripts()
			if err != nil {
				b.Fatal(err)
			}
			reg := obs.NewRegistry()
			opts := migrate.DefaultOptions()
			opts.Cache = verify.NewCache(0)
			opts.Stats = &verify.Stats{}
			opts.Metrics = obs.NewVerifyMetrics(reg)
			opts.SolverMetrics = obs.NewSolverMetrics(reg)
			if _, _, err := study.RunScripts(scripts, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := study.RunScripts(scripts, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec53_VerifySpeed_AddField times the safety check of a single
// AddField command (the paper: 7.1–12.7ms per command).
func BenchmarkSec53_VerifySpeed_AddField(b *testing.B) {
	s := mustSchema(b, chitterBenchSpec)
	script, err := parser.ParseMigration(`
User::AddField(bio : String {
  read: u -> [u] + u.followers,
  write: u -> [u]
}, u -> u.pronouns);
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := migrate.Verify(s, script, migrate.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec53_VerifySpeed_AddField_Cached re-verifies the same AddField
// against a warm verdict cache; the strictness and dataflow proofs are
// answered from the cache and only lowering/fingerprinting remains.
func BenchmarkSec53_VerifySpeed_AddField_Cached(b *testing.B) {
	s := mustSchema(b, chitterBenchSpec)
	script, err := parser.ParseMigration(`
User::AddField(bio : String {
  read: u -> [u] + u.followers,
  write: u -> [u]
}, u -> u.pronouns);
`)
	if err != nil {
		b.Fatal(err)
	}
	opts := migrate.DefaultOptions()
	opts.Cache = verify.NewCache(0)
	if _, err := migrate.Verify(s, script, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := migrate.Verify(s, script, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec53_VerifySpeed_UpdatePolicy times a single policy-strictness
// proof involving Find queries.
func BenchmarkSec53_VerifySpeed_UpdatePolicy(b *testing.B) {
	s := mustSchema(b, chitterBenchSpec)
	script, err := parser.ParseMigration(`
User::UpdateFieldWritePolicy(pronouns, u -> [u]);
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := migrate.Verify(s, script, migrate.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §5.4 macro-benchmark: endpoint latency over HTTP ----

// macroBench drives an endpoint with the paper's load shape (ab with 16
// concurrent connections); b.N requests total.
func macroBench(b *testing.B, path string, auth bool, enforcement bool) {
	srv, err := app.New()
	if err != nil {
		b.Fatal(err)
	}
	ids := srv.Seed(64, 10)
	srv.W.SetEnforcement(enforcement)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 16

	b.ResetTimer()
	b.SetParallelism(16)
	var n int64
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			id := ids[int(n)%len(ids)]
			n++
			mu.Unlock()
			req, _ := http.NewRequest("GET", ts.URL+path, nil)
			if auth {
				req.Header.Set("X-User-Id", fmt.Sprint(int64(id)))
			}
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("%s: status %d", path, resp.StatusCode)
			}
		}
	})
}

func BenchmarkSec54_Macro_Announcements_Enforced(b *testing.B) {
	macroBench(b, "/announcements", false, true)
}

func BenchmarkSec54_Macro_Announcements_Unenforced(b *testing.B) {
	macroBench(b, "/announcements", false, false)
}

func BenchmarkSec54_Macro_Profile_Enforced(b *testing.B) {
	macroBench(b, "/profile", true, true)
}

func BenchmarkSec54_Macro_Profile_Unenforced(b *testing.B) {
	macroBench(b, "/profile", true, false)
}

// ---- Figure 6 micro-benchmark: Chitter tasks in three configurations ----

const chitterBenchSpec = `
@static-principal
Unauthenticated

@principal
User {
  create: _ -> [Unauthenticated],
  delete: none,
  name: String { read: public, write: u -> [u] + User::Find({isAdmin: true}) },
  email: String {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> [u] },
  pronouns: String {
    read: u -> [u] + u.followers,
    write: u -> [u] },
  isAdmin: Bool {
    read: u -> [u] + User::Find({isAdmin: true}),
    write: u -> User::Find({isAdmin: true}) },
  followers: Set(Id(User)) {
    read: u -> [u] + u.followers,
    write: u -> [u] }}

Peep {
  create: p -> [p.author],
  delete: p -> [p.author] + User::Find({isAdmin: true}),
  author: Id(User) { read: public, write: none },
  body: String { read: public, write: p -> [p.author] }}
`

// chitterFixture seeds a database: nUsers users in a follow ring, each with
// peepsPerUser posts.
type chitterFixture struct {
	schema *schema.Schema
	db     *store.DB
	users  []store.ID
}

func newChitterFixture(b *testing.B, nUsers, peepsPerUser int) *chitterFixture {
	s := mustSchema(b, chitterBenchSpec)
	db := store.Open()
	users := db.Collection("User")
	peeps := db.Collection("Peep")
	ids := make([]store.ID, nUsers)
	for i := range ids {
		ids[i] = users.Insert(store.Doc{
			"name": fmt.Sprintf("user%d", i), "email": "e", "pronouns": "p",
			"isAdmin": false, "followers": []store.Value{},
		})
	}
	// Follow ring: user i is followed by i-1 and i+1.
	for i, id := range ids {
		users.Update(id, store.Doc{"followers": []store.Value{
			ids[(i+len(ids)-1)%len(ids)], ids[(i+1)%len(ids)],
		}})
	}
	for _, id := range ids {
		for p := 0; p < peepsPerUser; p++ {
			peeps.Insert(store.Doc{"author": id, "body": fmt.Sprintf("peep %d", p)})
		}
	}
	return &chitterFixture{schema: s, db: db, users: ids}
}

// BenchmarkFigure6_CreatePost_* measures creating a peep (paper: 0.313 /
// 0.334 / 0.331 ms for unchecked / hand-checked / Scooter).

func BenchmarkFigure6_CreatePost_Unchecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	peeps := fx.db.Collection("Peep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetIfLarge(b, &fx, &peeps, i)
		author := fx.users[i%len(fx.users)]
		peeps.Insert(store.Doc{"author": author, "body": "hello world"})
	}
}

// resetIfLarge rebuilds the fixture periodically (outside the timer) so the
// measured insert cost does not drift with collection size as b.N grows.
func resetIfLarge(b *testing.B, fx **chitterFixture, peeps **store.Collection, i int) {
	if i%8192 != 8191 {
		return
	}
	b.StopTimer()
	*fx = newChitterFixture(b, 64, 4)
	*peeps = (*fx).db.Collection("Peep")
	b.StartTimer()
}

func BenchmarkFigure6_CreatePost_HandChecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	peeps := fx.db.Collection("Peep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetIfLarge(b, &fx, &peeps, i)
		author := fx.users[i%len(fx.users)]
		// The manual check a careful developer writes: the principal must
		// be the author of the new peep.
		principal := author
		if principal != author {
			b.Fatal("create denied")
		}
		peeps.Insert(store.Doc{"author": author, "body": "hello world"})
	}
}

func BenchmarkFigure6_CreatePost_ScooterChecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	conn := ormOpen(fx)
	peeps := fx.db.Collection("Peep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8192 == 8191 {
			b.StopTimer()
			fx = newChitterFixture(b, 64, 4)
			conn = ormOpen(fx)
			peeps = fx.db.Collection("Peep")
			b.StartTimer()
		}
		author := fx.users[i%len(fx.users)]
		pr := conn.AsPrinc(eval.InstancePrincipal("User", author))
		if _, err := pr.Insert("Peep", store.Doc{"author": author, "body": "hello world"}); err != nil {
			b.Fatal(err)
		}
	}
	_ = peeps
}

// BenchmarkFigure6_ViewFriendPosts_* measures rendering the peeps of every
// user the principal follows, including the follower-guarded pronouns
// (paper: 13.8 / 14.9 / 15.2 ms).

func viewFriendIDs(fx *chitterFixture, viewer store.ID) []store.ID {
	doc, _ := fx.db.Collection("User").Get(viewer)
	set, _ := doc["followers"].([]store.Value)
	out := make([]store.ID, 0, len(set))
	for _, v := range set {
		if id, ok := v.(store.ID); ok {
			out = append(out, id)
		}
	}
	return out
}

func BenchmarkFigure6_ViewFriendPosts_Unchecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	users, peeps := fx.db.Collection("User"), fx.db.Collection("Peep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viewer := fx.users[i%len(fx.users)]
		total := 0
		for _, friend := range viewFriendIDs(fx, viewer) {
			fdoc, _ := users.Get(friend)
			_ = fdoc["pronouns"]
			total += len(peeps.Find(store.Eq("author", friend)))
		}
		if total == 0 {
			b.Fatal("no posts rendered")
		}
	}
}

func BenchmarkFigure6_ViewFriendPosts_HandChecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	users, peeps := fx.db.Collection("User"), fx.db.Collection("Peep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viewer := fx.users[i%len(fx.users)]
		total := 0
		for _, friend := range viewFriendIDs(fx, viewer) {
			fdoc, _ := users.Get(friend)
			// Manual pronoun check: visible to the friend themself and
			// their followers.
			visible := friend == viewer
			if !visible {
				if fs, ok := fdoc["followers"].([]store.Value); ok {
					for _, f := range fs {
						if f == viewer {
							visible = true
							break
						}
					}
				}
			}
			if visible {
				_ = fdoc["pronouns"]
			}
			total += len(peeps.Find(store.Eq("author", friend)))
		}
		if total == 0 {
			b.Fatal("no posts rendered")
		}
	}
}

func BenchmarkFigure6_ViewFriendPosts_ScooterChecked(b *testing.B) {
	fx := newChitterFixture(b, 64, 4)
	conn := ormOpen(fx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viewer := fx.users[i%len(fx.users)]
		pr := conn.AsPrinc(eval.InstancePrincipal("User", viewer))
		total := 0
		for _, friend := range viewFriendIDs(fx, viewer) {
			obj, err := pr.FindByID("User", friend)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = obj.Get("pronouns")
			posts, err := pr.Find("Peep", store.Eq("author", friend))
			if err != nil {
				b.Fatal(err)
			}
			total += len(posts)
		}
		if total == 0 {
			b.Fatal("no posts rendered")
		}
	}
}

// ---- helpers ----

func ormOpen(fx *chitterFixture) *orm.Conn { return orm.Open(fx.schema, fx.db) }

func mustSchema(b *testing.B, spec string) *schema.Schema {
	b.Helper()
	f, err := parser.ParsePolicyFile(spec)
	if err != nil {
		b.Fatal(err)
	}
	s := schema.FromPolicyFile(f)
	if err := typer.New(s).CheckSchema(); err != nil {
		b.Fatal(err)
	}
	return s
}

// ---- Policy compilation: compiled closures vs interpreter (§5.4) ----

// benchStripDecisions is the strip loop's decision batch in isolation: a
// viewer's read policy is decided for every field of another user's
// profile (the per-document inner loop of FindByID), with document
// retrieval hoisted so only policy evaluation is timed. The compiled
// engine uses the same Frame batching the ORM uses; the interpreter is
// the eval.Allowed oracle. This is the acceptance microbenchmark for the
// compiled-policy speedup.
func benchStripDecisions(b *testing.B, compiled bool) {
	fx := newChitterFixture(b, 64, 0)
	table := policyc.For(fx.schema)
	ev := eval.New(fx.schema, fx.db)
	m := fx.schema.Model("User")
	mp := table.Model("User")
	users := fx.db.Collection("User")
	docs := make([]store.Doc, len(fx.users))
	for i, id := range fx.users {
		docs[i], _ = users.Get(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The viewer follows the target (ring neighbour), so follower and
		// Find policies all run their full membership paths.
		viewer := eval.InstancePrincipal("User", fx.users[i%len(fx.users)])
		target := docs[(i+1)%len(docs)]
		if compiled {
			f := policyc.NewFrame(ev, viewer)
			f.SetTarget("User", target)
			for j := range m.Fields {
				if _, err := mp.FieldAt(j).Read.EvalIn(f); err != nil {
					b.Fatal(err)
				}
			}
			f.Release()
		} else {
			for _, fd := range m.Fields {
				if _, err := ev.Allowed(viewer, "User", target, fd.Read); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkPolicyCompiled(b *testing.B)    { benchStripDecisions(b, true) }
func BenchmarkPolicyInterpreted(b *testing.B) { benchStripDecisions(b, false) }

// benchProfileReads is the same hot path end to end through the ORM
// (document fetch, strip, object assembly included) — the macro view of
// the same toggle, reported alongside the microbenchmark.
func benchProfileReads(b *testing.B, compiled bool) {
	fx := newChitterFixture(b, 64, 0)
	conn := ormOpen(fx)
	conn.SetCompiledPolicies(compiled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viewer := fx.users[i%len(fx.users)]
		pr := conn.AsPrinc(eval.InstancePrincipal("User", viewer))
		obj, err := pr.FindByID("User", fx.users[(i+1)%len(fx.users)])
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := obj.Get("name"); !ok {
			b.Fatal("public name missing")
		}
	}
}

func BenchmarkPolicyCompiledORM(b *testing.B)    { benchProfileReads(b, true) }
func BenchmarkPolicyInterpretedORM(b *testing.B) { benchProfileReads(b, false) }

// ---- §5.3 persistent verdict cache: corpus replay cold vs warm ----

// BenchmarkVerdictDBReplay_Cold replays each case study against a fresh
// verdict store every iteration: every strictness query solves, and every
// verdict is appended to disk. This is the first `sidecar -verdict-db` run.
func BenchmarkVerdictDBReplay_Cold(b *testing.B) {
	studies, err := casestudies.Studies()
	if err != nil {
		b.Fatal(err)
	}
	for _, study := range studies {
		b.Run(study.Key, func(b *testing.B) {
			scripts, err := study.ParseScripts()
			if err != nil {
				b.Fatal(err)
			}
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vdb, err := verify.OpenVerdictDB(filepath.Join(dir, fmt.Sprintf("v%d.db", i)))
				if err != nil {
					b.Fatal(err)
				}
				opts := migrate.DefaultOptions()
				opts.VerdictDB = vdb
				if _, _, err := study.RunScripts(scripts, opts); err != nil {
					b.Fatal(err)
				}
				if err := vdb.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerdictDBReplay_Warm replays against a store seeded by one
// untimed pass: every iteration reopens the same file and must answer all
// strictness queries from disk without solving — the second
// `sidecar -verdict-db` run, or a colleague replaying a shipped store.
func BenchmarkVerdictDBReplay_Warm(b *testing.B) {
	studies, err := casestudies.Studies()
	if err != nil {
		b.Fatal(err)
	}
	for _, study := range studies {
		b.Run(study.Key, func(b *testing.B) {
			scripts, err := study.ParseScripts()
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "verdicts.db")
			vdb, err := verify.OpenVerdictDB(path)
			if err != nil {
				b.Fatal(err)
			}
			opts := migrate.DefaultOptions()
			opts.VerdictDB = vdb
			if _, _, err := study.RunScripts(scripts, opts); err != nil {
				b.Fatal(err)
			}
			if err := vdb.Close(); err != nil {
				b.Fatal(err)
			}
			stats := &verify.Stats{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vdb, err := verify.OpenVerdictDB(path)
				if err != nil {
					b.Fatal(err)
				}
				opts := migrate.DefaultOptions()
				opts.VerdictDB = vdb
				opts.Stats = stats
				if _, _, err := study.RunScripts(scripts, opts); err != nil {
					b.Fatal(err)
				}
				if err := vdb.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := stats.Snapshot()
			if snap.QueriesSolved != 0 {
				b.Fatalf("warm replay solved %d queries; want all from disk", snap.QueriesSolved)
			}
			b.Logf("%s: %d persist hits, %d misses", study.Key, snap.PersistHits, snap.PersistMisses)
		})
	}
}
