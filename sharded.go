package scooter

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"scooter/internal/migrate"
	"scooter/internal/obs"
	"scooter/internal/orm"
	"scooter/internal/shard"
	"scooter/internal/store"
)

// ShardedPrinc performs policy-checked operations for one principal across
// a shard set: by-id operations route to the owner shard, filter queries
// fan out and merge.
type ShardedPrinc = shard.Princ

// ShardedWorkspace fronts N independent shard workspaces — each with its
// own write-ahead log, migration journal, and (optionally) replica set —
// behind a hash-partitioning router. Documents are placed by id; every
// operation is enforced by the owner shard's policy-checking ORM, so the
// paper's guarantee is unchanged per document.
//
// Migrations commit across shards behind an epoch fence: MigrateNamed
// verifies the script once, records a prepare entry in a coordinator
// journal (the reserved "$shardtx" collection on shard 0), then applies
// the migration shard by shard — each shard fencing its own schema and
// "$spec" exactly as a single workspace does — and finally marks the
// coordinator entry done. The spec epoch (a counter in "$spec", bumped
// only when the spec text changes) is identical on every shard once the
// commit completes. A crash at any point leaves a prefix of shards on the
// new epoch; replaying the migration history after reopening (the same
// recovery contract a single durable workspace has) rolls the remaining
// shards forward — already-committed shards no-op via their own journals —
// so every shard converges to the same epoch and no shard ever re-serves
// a retracted spec.
type ShardedWorkspace struct {
	shards []*Workspace
	router *shard.Router

	// reg holds the router-level metrics (per-shard routed ops, fan-out
	// widths, epoch gauges); each shard keeps its own registry for its
	// WAL/ORM/solver metrics.
	reg     *obs.Registry
	metrics *obs.ShardMetrics

	// migMu serialises cross-shard migrations, mirroring Workspace.migMu.
	migMu     sync.Mutex
	journaled map[string]bool

	// closeMu makes Close idempotent under concurrent callers.
	closeMu sync.Mutex
	closed  bool
}

// NewSharded returns a sharded workspace over n fresh in-memory shards
// (no durability) — the sharded counterpart of NewWorkspace, used by
// tests and benchmarks.
func NewSharded(n int) (*ShardedWorkspace, error) {
	if n < 1 {
		return nil, fmt.Errorf("scooter: shard count must be >= 1, got %d", n)
	}
	shards := make([]*Workspace, n)
	for i := range shards {
		shards[i] = NewWorkspace()
	}
	return newSharded(shards), nil
}

// OpenSharded opens (or recovers) a sharded workspace of n durable shards
// under dir, each in its own subdirectory dir/shard-<i> with its own
// write-ahead log. Reopening an existing directory with a different shard
// count is refused: placement is a pure function of the id and the shard
// count, so changing n would orphan documents on shards the router no
// longer consults.
//
// Like OpenDurable, the specification starts empty; replay the migration
// history with MigrateNamed to drive every shard to the current epoch — a
// migration interrupted by a crash resumes exactly where the coordinator
// and the per-shard journals left it.
func OpenSharded(dir string, n int, opts DurabilityOptions) (*ShardedWorkspace, error) {
	if n < 1 {
		return nil, fmt.Errorf("scooter: shard count must be >= 1, got %d", n)
	}
	if _, err := os.Stat(shardDir(dir, n)); err == nil {
		return nil, fmt.Errorf("scooter: %s exists: directory was created with more than %d shards", shardDir(dir, n), n)
	}
	shards := make([]*Workspace, n)
	for i := range shards {
		w, err := OpenDurable(shardDir(dir, i), opts)
		if err != nil {
			for _, prev := range shards[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("scooter: opening shard %d: %w", i, err)
		}
		shards[i] = w
	}
	return newSharded(shards), nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

func newSharded(shards []*Workspace) *ShardedWorkspace {
	reg := obs.NewRegistry()
	metrics := obs.NewShardMetrics(reg, len(shards))
	dbs := make([]*store.DB, len(shards))
	conns := make([]*orm.Conn, len(shards))
	for i, w := range shards {
		dbs[i] = w.db
		conns[i] = w.conn
	}
	sw := &ShardedWorkspace{
		shards:  shards,
		router:  shard.NewRouter(dbs, conns, metrics),
		reg:     reg,
		metrics: metrics,
	}
	for i, w := range shards {
		metrics.SetEpoch(i, w.SpecEpoch())
	}
	return sw
}

// Shards returns the number of shards.
func (sw *ShardedWorkspace) Shards() int { return len(sw.shards) }

// Shard returns shard i's workspace, for per-shard inspection (state
// hashes, replication serving, metrics).
func (sw *ShardedWorkspace) Shard(i int) *Workspace { return sw.shards[i] }

// Metrics returns the router-level metrics registry.
func (sw *ShardedWorkspace) Metrics() *obs.Registry { return sw.reg }

// AsPrinc returns a handle performing routed, policy-checked operations
// on behalf of p.
func (sw *ShardedWorkspace) AsPrinc(p Principal) *ShardedPrinc {
	return sw.router.AsPrinc(p)
}

// SpecText renders the specification (identical on every shard once the
// latest migration has committed; shard 0 is authoritative between).
func (sw *ShardedWorkspace) SpecText() string { return sw.shards[0].SpecText() }

// Epochs reports each shard's current $spec epoch. All equal means every
// shard enforces the same policies; a mixed vector means a cross-shard
// migration is in flight (or was interrupted — replay the history).
func (sw *ShardedWorkspace) Epochs() []int64 {
	out := make([]int64, len(sw.shards))
	for i, w := range sw.shards {
		out[i] = w.SpecEpoch()
	}
	return out
}

// LogicalStateHash fingerprints the user-visible state of the whole shard
// set: user collections merged in id order, the spec by text and epoch,
// the migration journals by content. Comparing it with the hash of a
// single unsharded workspace (a one-shard set) given the same explicit-id
// workload proves observational equivalence; see shard.LogicalHash.
func (sw *ShardedWorkspace) LogicalStateHash() (string, error) {
	dbs := make([]*store.DB, len(sw.shards))
	for i, w := range sw.shards {
		dbs[i] = w.db
	}
	return shard.LogicalHash(dbs)
}

// InsertRaw bypasses policy checks to seed data on the owner shard of a
// freshly allocated id (test fixtures and benchmark setup).
func (sw *ShardedWorkspace) InsertRaw(model string, fields Doc) ID {
	id := sw.router.NewID()
	owner := sw.router.Owner(id)
	if err := sw.router.DB(owner).Collection(model).InsertWithID(id, fields); err != nil {
		panic(fmt.Sprintf("scooter: InsertRaw with fresh id collided: %v", err))
	}
	return id
}

// EnsureIndex installs a hash index on model.field on every shard.
func (sw *ShardedWorkspace) EnsureIndex(model, field string) {
	for _, w := range sw.shards {
		w.EnsureIndex(model, field)
	}
}

// Sync forces an fsync of every shard's write-ahead log.
func (sw *ShardedWorkspace) Sync() error {
	var first error
	for _, w := range sw.shards {
		if err := w.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every shard. It is idempotent and safe under concurrent
// callers (each shard's own Close is too, so a caller holding a *Workspace
// from Shard(i) cannot race the router's shutdown into a double close).
func (sw *ShardedWorkspace) Close() error {
	sw.closeMu.Lock()
	defer sw.closeMu.Unlock()
	if sw.closed {
		return nil
	}
	sw.closed = true
	var first error
	for _, w := range sw.shards {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MigrateNamed applies a named migration across every shard exactly once,
// with the same journal semantics as Workspace.MigrateNamed.
func (sw *ShardedWorkspace) MigrateNamed(name, src string) (bool, error) {
	return sw.MigrateNamedOpts(name, src, DefaultOptions())
}

// MigrateNamedOpts is MigrateNamed with explicit options. The script is
// verified once (against the first shard that has not applied it); every
// shard then executes it with verification skipped — strictness is a
// property of the spec transition, which is identical on every shard, not
// of the data. Online options apply per shard: each shard runs its own
// fenced dual-read window and batched backfill in turn, and OnBatch hooks
// fire with that shard's batches while the router keeps serving traffic.
func (sw *ShardedWorkspace) MigrateNamedOpts(name, src string, opts Options) (bool, error) {
	sw.migMu.Lock()
	defer sw.migMu.Unlock()

	coord := migrate.NewJournalIn(sw.shards[0].db, shard.CoordinatorCollection)
	coord.Clock = opts.Clock

	if sw.journaled[name] {
		if coord.Check(name, src) == migrate.StatusConflict {
			return false, &migrate.ErrJournalConflict{Name: name}
		}
		return false, nil
	}

	status := coord.Check(name, src)
	if status == migrate.StatusConflict {
		return false, &migrate.ErrJournalConflict{Name: name}
	}

	applied := false
	if status == migrate.StatusApplied {
		// Committed on every shard in an earlier process: only advance the
		// in-memory schemas (each shard's own journal classifies it Applied
		// and replays the schema without re-executing or re-proving).
		for i, w := range sw.shards {
			if _, err := w.MigrateNamedOpts(name, src, opts); err != nil {
				return false, fmt.Errorf("scooter: replaying %s on shard %d: %w", name, i, err)
			}
		}
	} else {
		if status == migrate.StatusPartial {
			// A previous process died mid-commit; the per-shard journals
			// say exactly which shards still need the migration.
			sw.metrics.RecordRecovery()
		}
		// Prepare precedes the first shard commit, so a crash anywhere in
		// the loop leaves a durable record naming the in-flight migration.
		id, err := coord.Begin(name, src, len(sw.shards))
		if err != nil {
			return false, err
		}
		// Verification happens once, inside the first shard that has not
		// applied the script yet; the rest execute with it skipped.
		verified := false
		for i, w := range sw.shards {
			shardOpts := opts
			if verified || migrate.NewJournal(w.db).Check(name, src) == migrate.StatusApplied {
				shardOpts.SkipVerification = true
			} else {
				verified = true
			}
			shardApplied, err := w.MigrateNamedOpts(name, src, shardOpts)
			if err != nil {
				return false, fmt.Errorf("scooter: applying %s on shard %d: %w", name, i, err)
			}
			applied = applied || shardApplied
			if err := coord.Progress(id, i+1); err != nil {
				return false, err
			}
		}
		if err := coord.Finish(id, len(sw.shards)); err != nil {
			return false, err
		}
		sw.metrics.RecordMigration()
	}

	for i, w := range sw.shards {
		sw.metrics.SetEpoch(i, w.SpecEpoch())
	}
	if sw.journaled == nil {
		sw.journaled = map[string]bool{}
	}
	sw.journaled[name] = true
	return applied, nil
}

// AppliedMigrations lists the coordinator's journal of cross-shard
// migrations.
func (sw *ShardedWorkspace) AppliedMigrations() []migrate.JournalEntry {
	coord := migrate.NewJournalIn(sw.shards[0].db, shard.CoordinatorCollection)
	return coord.Entries()
}
